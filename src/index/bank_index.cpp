#include "index/bank_index.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace scoris::index {

using seqio::Code;

BankIndex::BankIndex(const seqio::SequenceBank& bank, const SeedCoder& coder,
                     const IndexOptions& options)
    : bank_(&bank), coder_(coder) {
  if (coder.w() > 13) {
    throw std::invalid_argument("BankIndex: W > 13 dictionary too large");
  }
  if (options.stride < 1) {
    throw std::invalid_argument("BankIndex: stride must be >= 1");
  }
  if (options.mask != nullptr && options.mask->size() != bank.data_size()) {
    throw std::invalid_argument("BankIndex: mask size mismatch");
  }

  const auto codes = bank.data();
  const std::size_t n = codes.size();
  const int w = coder.w();

  first_.assign(coder.num_seeds(), -1);
  next_.assign(n, -1);
  indexed_ = filter::MaskBitmap(n);
  if (n < static_cast<std::size_t>(w)) return;

  // Walk sequences (and positions within them) from last to first so the
  // chains come out in ascending position order.  `run` counts consecutive
  // concrete bases starting at the current position; a position is a word
  // start when run >= W.  The seed code is maintained by rolling left.
  //
  // The stride for asymmetric indexing applies to *sequence-local*
  // offsets, so an indexed word set never depends on what precedes the
  // sequence in the bank (this keeps sliced/chunked runs bit-identical,
  // see core/chunked.hpp).
  for (std::size_t s = bank.size(); s-- > 0;) {
    const std::size_t off = bank.offset(s);
    const std::size_t len = bank.length(s);
    std::size_t run = 0;
    SeedCode code = 0;
    for (std::size_t local = len; local-- > 0;) {
      const std::size_t p = off + local;
      const Code c = codes[p];
      if (!seqio::is_base(c)) {
        run = 0;
        continue;
      }
      ++run;
      code = coder_.roll_left(code, c);
      if (run < static_cast<std::size_t>(w)) continue;
      if (options.stride > 1 &&
          (local % static_cast<std::size_t>(options.stride)) != 0) {
        continue;
      }
      if (options.mask != nullptr &&
          options.mask->any_in(p, static_cast<std::size_t>(w))) {
        continue;
      }
      if (first_[code] < 0) ++distinct_seeds_;
      next_[p] = first_[code];
      first_[code] = static_cast<std::int32_t>(p);
      indexed_.set(p);
      ++total_indexed_;
    }
  }
}

std::size_t BankIndex::occurrence_count(SeedCode code) const {
  std::size_t n = 0;
  for (std::int32_t p = first_[code]; p >= 0;
       p = next_[static_cast<std::size_t>(p)]) {
    ++n;
  }
  return n;
}

namespace {

constexpr char kIndexMagic[4] = {'S', 'C', 'O', 'I'};
constexpr std::uint32_t kIndexVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("index load: truncated input");
  return v;
}
std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("index load: truncated input");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw std::runtime_error("index load: truncated input");
  return v;
}

}  // namespace

void BankIndex::save(std::ostream& os) const {
  os.write(kIndexMagic, sizeof(kIndexMagic));
  write_u32(os, kIndexVersion);
  write_u32(os, static_cast<std::uint32_t>(coder_.w()));
  write_u64(os, bank_->data_size());
  write_vec(os, first_);
  write_vec(os, next_);
  write_vec(os, indexed_.words());
  write_u64(os, indexed_.size());
  write_u64(os, total_indexed_);
  write_u64(os, distinct_seeds_);
  if (!os) throw std::runtime_error("index save: write failed");
}

BankIndex BankIndex::load(std::istream& is, const seqio::SequenceBank& bank) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (!is || magic[0] != 'S' || magic[1] != 'C' || magic[2] != 'O' ||
      magic[3] != 'I') {
    throw std::runtime_error("index load: bad magic");
  }
  const std::uint32_t version = read_u32(is);
  if (version != kIndexVersion) {
    throw std::runtime_error("index load: unsupported version");
  }
  const auto w = static_cast<int>(read_u32(is));
  const std::uint64_t data_size = read_u64(is);
  if (data_size != bank.data_size()) {
    throw std::runtime_error(
        "index load: bank size mismatch (index built for another bank?)");
  }
  BankIndex idx(bank, SeedCoder(w), /*load_tag=*/0);
  idx.first_ = read_vec<std::int32_t>(is);
  idx.next_ = read_vec<std::int32_t>(is);
  auto words = read_vec<std::uint64_t>(is);
  const std::uint64_t bit_size = read_u64(is);
  idx.indexed_ = filter::MaskBitmap::from_words(std::move(words),
                                                static_cast<std::size_t>(bit_size));
  idx.total_indexed_ = read_u64(is);
  idx.distinct_seeds_ = read_u64(is);
  if (idx.first_.size() != idx.coder_.num_seeds() ||
      idx.next_.size() != bank.data_size()) {
    throw std::runtime_error("index load: inconsistent array sizes");
  }
  return idx;
}

}  // namespace scoris::index
