// Spaced seeds — the sensitivity-oriented seed family the paper positions
// ORIS against (section 1: "instead of considering a seed as a word of W
// contiguous characters, a word of W not necessarily consecutive
// characters may be considered. These seeds, referred as spaced-seeds,
// significantly increase the sensitivity", PatternHunter / Yass).
//
// ORIS deliberately keeps contiguous seeds (its ordering and rolling-code
// machinery depend on them); this module provides the spaced family so the
// trade-off the paper describes can be measured (bench_a7_spaced_seeds):
// at equal weight, a well-chosen spaced seed hits diverged homologies more
// often than the contiguous seed, at the cost of O(weight) code extraction
// (no rolling update) and without ORIS's enumeration order.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/seed_coder.hpp"
#include "seqio/sequence_bank.hpp"
#include "simulate/rng.hpp"

namespace scoris::index {

/// A match/don't-care sampling pattern, e.g. PatternHunter's
/// "111010010100110111" (span 18, weight 11).
class SpacedSeed {
 public:
  /// Pattern of '1' (sampled) and '0' (don't care); must start and end
  /// with '1' and contain 1..15 ones. Throws std::invalid_argument.
  explicit SpacedSeed(std::string_view pattern);

  [[nodiscard]] int span() const { return static_cast<int>(pattern_.size()); }
  [[nodiscard]] int weight() const { return static_cast<int>(ones_.size()); }
  [[nodiscard]] const std::string& pattern() const { return pattern_; }

  /// Code of the sampled positions of codes[pos .. pos+span), or nullopt
  /// when any sampled character is not a concrete base or out of range.
  [[nodiscard]] std::optional<SeedCode> code_at(
      std::span<const seqio::Code> codes, std::size_t pos) const;

  /// True when a seed *match* exists at this offset of two sequences:
  /// all sampled positions carry identical concrete bases.
  [[nodiscard]] bool matches(std::span<const seqio::Code> a, std::size_t pa,
                             std::span<const seqio::Code> b,
                             std::size_t pb) const;

  /// The contiguous seed of weight w as a degenerate pattern ("111...1").
  [[nodiscard]] static SpacedSeed contiguous(int w);

  /// PatternHunter's classic weight-11 seed.
  [[nodiscard]] static const SpacedSeed& pattern_hunter();

 private:
  std::string pattern_;
  std::vector<int> ones_;  // offsets of sampled positions
};

/// Hash-map seed index over a bank (spaced seeds cannot use the 4^W
/// dictionary + rolling build of BankIndex).
class SpacedIndex {
 public:
  SpacedIndex(const seqio::SequenceBank& bank, const SpacedSeed& seed);

  [[nodiscard]] const std::vector<seqio::Pos>* occurrences(
      SeedCode code) const;
  [[nodiscard]] std::size_t total_indexed() const { return total_; }

 private:
  std::unordered_map<SeedCode, std::vector<seqio::Pos>> table_;
  std::size_t total_ = 0;
};

/// Monte-Carlo hit sensitivity: probability that a homologous region of
/// `region_len` at the given identity contains at least one seed match
/// (the PatternHunter experiment; identity applied i.i.d. per position).
[[nodiscard]] double hit_sensitivity(const SpacedSeed& seed, double identity,
                                     std::size_t region_len,
                                     simulate::Rng& rng, int trials = 2000);

}  // namespace scoris::index
