#include "blast/blastn.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "align/ungapped.hpp"
#include "index/bank_index.hpp"
#include "util/timer.hpp"

namespace scoris::blast {
namespace {

using align::Hsp;
using index::SeedCode;
using seqio::Code;
using seqio::Pos;

/// NCBI nucleotide lookup tables are built over (at most) 8-mers even for
/// word size 11; a hit must then be *verified* by exact-match extension to
/// the full word (blast_nalookup / na_scan in the C toolkit).  This is the
/// central structural difference from ORIS, which affords a full-width
/// 4^W dictionary (5N bytes) and never verifies.
constexpr int kLookupWidth = 8;

}  // namespace

BlastN::BlastN(BlastOptions options) : options_(std::move(options)) {
  karlin_ = stats::karlin_match_mismatch(options_.scoring.match,
                                         options_.scoring.mismatch);
}

BlastResult BlastN::run(const seqio::SequenceBank& bank1,
                        const seqio::SequenceBank& bank2) const {
  using seqio::Strand;
  if (options_.strand == Strand::kPlus) {
    return run_single(bank1, bank2, /*minus=*/false);
  }
  const seqio::SequenceBank rc = seqio::reverse_complement(bank2);
  if (options_.strand == Strand::kMinus) {
    return run_single(bank1, rc, /*minus=*/true);
  }
  BlastResult plus = run_single(bank1, bank2, /*minus=*/false);
  BlastResult minus = run_single(bank1, rc, /*minus=*/true);
  plus.alignments.insert(plus.alignments.end(), minus.alignments.begin(),
                         minus.alignments.end());
  std::sort(plus.alignments.begin(), plus.alignments.end(),
            [](const align::GappedAlignment& x,
               const align::GappedAlignment& y) {
              return std::tuple(x.evalue, -x.bitscore, x.seq1, x.s1, x.seq2,
                                x.s2, x.minus) <
                     std::tuple(y.evalue, -y.bitscore, y.seq1, y.s1, y.seq2,
                                y.s2, y.minus);
            });
  auto& s = plus.stats;
  const auto& m = minus.stats;
  s.index_seconds += m.index_seconds;
  s.scan_seconds += m.scan_seconds;
  s.gapped_seconds += m.gapped_seconds;
  s.total_seconds += m.total_seconds;
  s.hit_pairs += m.hit_pairs;
  s.verified_words += m.verified_words;
  s.diag_skipped += m.diag_skipped;
  s.two_hit_deferred += m.two_hit_deferred;
  s.hsps += m.hsps;
  s.duplicate_hsps += m.duplicate_hsps;
  s.alignments = plus.alignments.size();
  return plus;
}

BlastResult BlastN::run_single(const seqio::SequenceBank& bank1,
                               const seqio::SequenceBank& bank2,
                               bool minus) const {
  BlastResult result;
  util::WallTimer total;

  const int w = options_.w;
  const int lut_w = std::min(w, kLookupWidth);
  // Scan stride: every w-mer of the stream contains (w - lut_w + 1)
  // lookup-word start offsets, so scanning this stride misses nothing.
  const std::size_t stride = static_cast<std::size_t>(w - lut_w + 1);

  // ---- setup: mask + database lookup table ---------------------------------
  util::WallTimer t1;
  const index::SeedCoder coder(lut_w);

  filter::MaskBitmap mask1;
  filter::MaskBitmap mask2;
  index::IndexOptions iopt1;
  if (options_.dust) {
    mask1 = filter::dust_mask(bank1, options_.dust_params);
    mask2 = filter::dust_mask(bank2, options_.dust_params);
    iopt1.mask = &mask1;
  }
  const index::BankIndex db(bank1, coder, iopt1);
  result.stats.index_seconds = t1.seconds();

  // ---- seed scan + verification + ungapped extension -----------------------
  util::WallTimer t2;
  const auto seq1 = bank1.data();
  const auto seq2 = bank2.data();
  const std::size_t n1 = seq1.size();
  const std::size_t n2 = seq2.size();

  // Per-diagonal high-water mark: furthest bank2 position already covered
  // by an ungapped extension on that diagonal.  diag = p1 - p2 + n2 maps
  // into [0, n1 + n2).  Classic BLASTN redundancy structure.
  std::vector<std::int64_t> diag_level(n1 + n2, -1);
  result.stats.diag_array_bytes = diag_level.capacity() * sizeof(std::int64_t);

  // Two-hit mode: last verified-word position per diagonal.
  std::vector<std::int64_t> diag_last;
  if (options_.two_hit) {
    diag_last.assign(n1 + n2, std::numeric_limits<std::int64_t>::min() / 2);
    result.stats.diag_array_bytes +=
        diag_last.capacity() * sizeof(std::int64_t);
  }

  std::vector<Hsp> hsps;

  // Stream bank2 with a rolling lookup word, visiting every `stride`-th
  // valid word start (NCBI scans its packed database the same way).
  std::size_t run = 0;
  SeedCode code = 0;
  for (std::size_t p2 = 0; p2 < n2; ++p2) {
    const Code c = seq2[p2];
    if (!seqio::is_base(c)) {
      run = 0;
      continue;
    }
    ++run;
    code = coder.roll_right(code, c);
    if (run < static_cast<std::size_t>(lut_w)) continue;
    const std::size_t word_start = p2 + 1 - static_cast<std::size_t>(lut_w);
    if (word_start % stride != 0) continue;
    if (options_.dust &&
        mask2.any_in(word_start, static_cast<std::size_t>(lut_w))) {
      continue;
    }

    for (std::int32_t h1 = db.first(code); h1 >= 0; h1 = db.next(h1)) {
      ++result.stats.hit_pairs;
      const auto p1 = static_cast<std::size_t>(h1);
      const std::size_t diag = p1 - word_start + n2;
      if (diag_level[diag] >= static_cast<std::int64_t>(word_start)) {
        ++result.stats.diag_skipped;
        continue;
      }

      // Verify the lookup hit extends to a full w-mer exact match
      // (left then right, counting identical concrete bases).
      std::size_t left = 0;
      {
        std::size_t i = p1;
        std::size_t j = word_start;
        while (i > 0 && j > 0) {
          const Code a = seq1[i - 1];
          const Code b = seq2[j - 1];
          if (!seqio::is_base(a) || a != b) break;
          --i;
          --j;
          ++left;
          if (left + static_cast<std::size_t>(lut_w) >=
              static_cast<std::size_t>(w)) {
            break;
          }
        }
      }
      std::size_t right = 0;
      {
        std::size_t i = p1 + static_cast<std::size_t>(lut_w);
        std::size_t j = word_start + static_cast<std::size_t>(lut_w);
        while (i < n1 && j < n2 &&
               left + static_cast<std::size_t>(lut_w) + right <
                   static_cast<std::size_t>(w)) {
          const Code a = seq1[i];
          const Code b = seq2[j];
          if (!seqio::is_base(a) || a != b) break;
          ++i;
          ++j;
          ++right;
        }
      }
      if (left + static_cast<std::size_t>(lut_w) + right <
          static_cast<std::size_t>(w)) {
        continue;  // verification failed: no full word here
      }
      ++result.stats.verified_words;

      if (options_.two_hit) {
        // Gapped-BLAST style trigger: extend only when a previous verified
        // hit exists on this diagonal within the window.  (The protein
        // non-overlap constraint is dropped: the stride-4 nucleotide scan
        // produces hits denser than the word size.)
        const std::int64_t prev = diag_last[diag];
        diag_last[diag] = static_cast<std::int64_t>(word_start);
        const std::int64_t dist =
            static_cast<std::int64_t>(word_start) - prev;
        if (dist <= 0 || dist > options_.two_hit_window) {
          ++result.stats.two_hit_deferred;
          continue;
        }
      }

      const Pos s1 = static_cast<Pos>(p1 - left);
      const Pos s2 = static_cast<Pos>(word_start - left);
      const Hsp h =
          align::extend_ungapped(seq1, seq2, s1, s2, w, options_.scoring);
      diag_level[diag] = static_cast<std::int64_t>(h.e2);
      if (h.score >= options_.min_hsp_score) hsps.push_back(h);
    }
  }

  // Explicit de-duplication (sort + unique), part of the classic pipeline.
  const auto key = [](const Hsp& h) {
    return std::tuple(h.s1, h.e1, h.s2, h.e2);
  };
  std::sort(hsps.begin(), hsps.end(),
            [&](const Hsp& x, const Hsp& y) { return key(x) < key(y); });
  const auto new_end = std::unique(
      hsps.begin(), hsps.end(),
      [&](const Hsp& x, const Hsp& y) { return key(x) == key(y); });
  result.stats.duplicate_hsps =
      static_cast<std::size_t>(std::distance(new_end, hsps.end()));
  hsps.erase(new_end, hsps.end());
  result.stats.hsps = hsps.size();
  result.stats.scan_seconds = t2.seconds();

  // ---- gapped stage (shared with SCORIS-N) ---------------------------------
  util::WallTimer t3;
  core::GappedStageOptions gopt;
  gopt.scoring = options_.scoring;
  gopt.max_evalue = options_.max_evalue;
  gopt.max_gap_extent = options_.max_gap_extent;
  gopt.threads = options_.threads;
  gopt.length_adjust = true;  // NCBI-style effective search space
  result.alignments =
      core::gapped_stage(hsps, bank1, bank2, karlin_, gopt,
                         &result.stats.gapped);
  result.stats.gapped_seconds = t3.seconds();
  if (minus) {
    for (auto& a : result.alignments) a.minus = true;
  }

  result.stats.alignments = result.alignments.size();
  result.stats.total_seconds = total.seconds();
  return result;
}

}  // namespace scoris::blast
