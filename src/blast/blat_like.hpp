// BlatLike — a BLAT-style comparator (the paper's section-4 perspective:
// "Comparing SCORIS-N with other programs which have also been designed
// for dealing with large DNA sequences and which also handle sequence
// indexing into main memory (BLAT, FLASH, BLASTZ)").
//
// BLAT's defining memory/speed trade-off (Kent 2002): the database index
// stores only NON-OVERLAPPING W-mers (stride = W), cutting index memory by
// a factor of W, and the query is scanned at every position against it.
// Consequences reproduced here:
//  * index memory ~ N/W chain entries instead of N (vs ORIS's 5N bytes);
//  * a homologous region is detected only if it contains an exact W-mer
//    match aligned to the database's W-grid, so sensitivity drops for
//    diverged sequences — BLAT is built for high-identity comparisons;
//  * hit volume is ~1/W of a full index scan, so the search stage is fast.
//
// The ungapped/gapped machinery and statistics are shared with the other
// two programs, so the three-way comparison (bench_a5_comparators)
// isolates the indexing strategies.
#pragma once

#include <vector>

#include "align/records.hpp"
#include "align/scoring.hpp"
#include "core/gapped_stage.hpp"
#include "filter/dust.hpp"
#include "seqio/sequence_bank.hpp"
#include "seqio/strand.hpp"
#include "stats/karlin.hpp"

namespace scoris::blast {

struct BlatOptions {
  int w = 11;
  align::ScoringParams scoring;
  int min_hsp_score = 25;
  double max_evalue = 1e-3;
  bool dust = true;
  filter::DustParams dust_params;
  seqio::Strand strand = seqio::Strand::kPlus;
  int threads = 1;
  std::size_t max_gap_extent = 1u << 20;
};

struct BlatStats {
  double index_seconds = 0.0;
  double scan_seconds = 0.0;
  double gapped_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t hit_pairs = 0;
  std::size_t diag_skipped = 0;
  std::size_t hsps = 0;
  std::size_t index_bytes = 0;  ///< tiled index memory
  core::GappedStageStats gapped;
  std::size_t alignments = 0;
};

struct BlatResult {
  std::vector<align::GappedAlignment> alignments;
  BlatStats stats;
};

class BlatLike {
 public:
  explicit BlatLike(BlatOptions options = {});

  /// Compare bank1 (database, tiled index) against bank2 (scanned query
  /// stream).  Same orientation as core::Pipeline / BlastN.
  [[nodiscard]] BlatResult run(const seqio::SequenceBank& bank1,
                               const seqio::SequenceBank& bank2) const;

  [[nodiscard]] const BlatOptions& options() const { return options_; }
  [[nodiscard]] const stats::KarlinParams& karlin() const { return karlin_; }

 private:
  [[nodiscard]] BlatResult run_single(const seqio::SequenceBank& bank1,
                                      const seqio::SequenceBank& bank2,
                                      bool minus) const;

  BlatOptions options_;
  stats::KarlinParams karlin_;
};

}  // namespace scoris::blast
