#include "blast/blat_like.hpp"

#include <algorithm>
#include <tuple>

#include "align/ungapped.hpp"
#include "index/bank_index.hpp"
#include "util/timer.hpp"

namespace scoris::blast {
namespace {

using align::Hsp;
using index::SeedCode;
using seqio::Code;
using seqio::Pos;

}  // namespace

BlatLike::BlatLike(BlatOptions options) : options_(std::move(options)) {
  karlin_ = stats::karlin_match_mismatch(options_.scoring.match,
                                         options_.scoring.mismatch);
}

BlatResult BlatLike::run(const seqio::SequenceBank& bank1,
                         const seqio::SequenceBank& bank2) const {
  using seqio::Strand;
  if (options_.strand == Strand::kPlus) {
    return run_single(bank1, bank2, /*minus=*/false);
  }
  const seqio::SequenceBank rc = seqio::reverse_complement(bank2);
  if (options_.strand == Strand::kMinus) {
    return run_single(bank1, rc, /*minus=*/true);
  }
  BlatResult plus = run_single(bank1, bank2, /*minus=*/false);
  BlatResult minus = run_single(bank1, rc, /*minus=*/true);
  plus.alignments.insert(plus.alignments.end(), minus.alignments.begin(),
                         minus.alignments.end());
  std::sort(plus.alignments.begin(), plus.alignments.end(),
            [](const align::GappedAlignment& x,
               const align::GappedAlignment& y) {
              return std::tuple(x.evalue, -x.bitscore, x.seq1, x.s1, x.seq2,
                                x.s2, x.minus) <
                     std::tuple(y.evalue, -y.bitscore, y.seq1, y.s1, y.seq2,
                                y.s2, y.minus);
            });
  plus.stats.total_seconds += minus.stats.total_seconds;
  plus.stats.hit_pairs += minus.stats.hit_pairs;
  plus.stats.hsps += minus.stats.hsps;
  plus.stats.alignments = plus.alignments.size();
  return plus;
}

BlatResult BlatLike::run_single(const seqio::SequenceBank& bank1,
                                const seqio::SequenceBank& bank2,
                                bool minus) const {
  BlatResult result;
  util::WallTimer total;
  const int w = options_.w;

  // ---- setup: mask + tiled (non-overlapping) database index ---------------
  util::WallTimer t1;
  const index::SeedCoder coder(w);
  filter::MaskBitmap mask1;
  filter::MaskBitmap mask2;
  index::IndexOptions iopt1;
  iopt1.stride = w;  // BLAT's defining choice: non-overlapping tiles
  if (options_.dust) {
    mask1 = filter::dust_mask(bank1, options_.dust_params);
    mask2 = filter::dust_mask(bank2, options_.dust_params);
    iopt1.mask = &mask1;
  }
  const index::BankIndex db(bank1, coder, iopt1);
  result.stats.index_bytes = db.memory_bytes();
  result.stats.index_seconds = t1.seconds();

  // ---- query scan (every position) + ungapped extension --------------------
  util::WallTimer t2;
  const auto seq1 = bank1.data();
  const auto seq2 = bank2.data();
  const std::size_t n1 = seq1.size();
  const std::size_t n2 = seq2.size();

  std::vector<std::int64_t> diag_level(n1 + n2, -1);
  std::vector<Hsp> hsps;

  std::size_t run = 0;
  SeedCode code = 0;
  for (std::size_t p2 = 0; p2 < n2; ++p2) {
    const Code c = seq2[p2];
    if (!seqio::is_base(c)) {
      run = 0;
      continue;
    }
    ++run;
    code = coder.roll_right(code, c);
    if (run < static_cast<std::size_t>(w)) continue;
    const std::size_t word_start = p2 + 1 - static_cast<std::size_t>(w);
    if (options_.dust && mask2.any_in(word_start, static_cast<std::size_t>(w))) {
      continue;
    }
    for (std::int32_t h1 = db.first(code); h1 >= 0; h1 = db.next(h1)) {
      ++result.stats.hit_pairs;
      const auto p1 = static_cast<std::size_t>(h1);
      const std::size_t diag = p1 - word_start + n2;
      if (diag_level[diag] >= static_cast<std::int64_t>(word_start)) {
        ++result.stats.diag_skipped;
        continue;
      }
      const Hsp h = align::extend_ungapped(seq1, seq2, static_cast<Pos>(p1),
                                           static_cast<Pos>(word_start), w,
                                           options_.scoring);
      diag_level[diag] = static_cast<std::int64_t>(h.e2);
      if (h.score >= options_.min_hsp_score) hsps.push_back(h);
    }
  }

  const auto key = [](const Hsp& h) {
    return std::tuple(h.s1, h.e1, h.s2, h.e2);
  };
  std::sort(hsps.begin(), hsps.end(),
            [&](const Hsp& x, const Hsp& y) { return key(x) < key(y); });
  hsps.erase(std::unique(hsps.begin(), hsps.end(),
                         [&](const Hsp& x, const Hsp& y) {
                           return key(x) == key(y);
                         }),
             hsps.end());
  result.stats.hsps = hsps.size();
  result.stats.scan_seconds = t2.seconds();

  // ---- gapped stage (shared) -----------------------------------------------
  util::WallTimer t3;
  core::GappedStageOptions gopt;
  gopt.scoring = options_.scoring;
  gopt.max_evalue = options_.max_evalue;
  gopt.max_gap_extent = options_.max_gap_extent;
  gopt.threads = options_.threads;
  result.alignments = core::gapped_stage(hsps, bank1, bank2, karlin_, gopt,
                                         &result.stats.gapped);
  result.stats.gapped_seconds = t3.seconds();
  if (minus) {
    for (auto& a : result.alignments) a.minus = true;
  }
  result.stats.alignments = result.alignments.size();
  result.stats.total_seconds = total.seconds();
  return result;
}

}  // namespace scoris::blast
