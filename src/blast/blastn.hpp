// BlastN — a from-scratch BLASTN-style baseline (the paper's comparator).
//
// The paper benchmarks SCORIS-N against NCBI BLASTN 2.2.17
// (`blastall -p blastn -m 8 -e 0.001 -S 1`); that binary is unavailable
// offline, so this module reimplements the classic BLASTN pipeline on the
// same substrates, preserving the structural differences that the paper's
// measurements exercise:
//
//  * like the NCBI C-toolkit blastn, the lookup table is built over 8-mers
//    even for word size 11 (a full 4^11 table was considered too large);
//    bank2 is scanned at stride (w - 8 + 1) and every lookup hit must be
//    *verified* by exact-match extension to the full word — 64x more
//    candidate hits than ORIS's full-width 4^W dictionary sees, which is
//    precisely the cost the ORIS 5N-byte index eliminates;
//  * hits arrive in scan order — scattered accesses into the database
//    index, in contrast to ORIS's seed-ordered batching;
//  * a per-diagonal high-water-mark array suppresses hits inside already
//    extended regions (NCBI's classic redundancy trick), which costs
//    O(diagonal-space) memory that ORIS does not need;
//  * surviving HSPs must be sorted + de-duplicated explicitly (ORIS gets
//    uniqueness from the seed order for free);
//  * the gapped stage and statistics are shared with SCORIS-N
//    (core::gapped_stage), so measured differences isolate hit detection
//    and ungapped extension — exactly the paper's contribution.
//
// Sensitivity differences with SCORIS-N arise naturally from the diagonal
// high-water-mark pruning vs. the seed-order abort; the paper observes a
// few percent disagreement both ways (section 3.4).
#pragma once

#include <vector>

#include "align/records.hpp"
#include "align/scoring.hpp"
#include "core/gapped_stage.hpp"
#include "filter/dust.hpp"
#include "seqio/sequence_bank.hpp"
#include "seqio/strand.hpp"
#include "stats/karlin.hpp"

namespace scoris::blast {

struct BlastOptions {
  /// Two defaults deliberately differ from core::Options, reproducing the
  /// paper's explanation of its few-percent mutual misses (section 3.4):
  ///  * e-values use NCBI's effective-length correction (length_adjust in
  ///    the gapped stage) while SCORIS-N uses the paper's plain m*n
  ///    formula — "there are probably slight differences in the
  ///    computation of this information, leading to reject borderline
  ///    alignments";
  ///  * the DUST level differs slightly — "the SCORIS-N low complexity
  ///    filter presents some difference with the dust filter included in
  ///    BLASTN".
  /// Third difference: the extension drop-offs are tuned differently —
  /// "the gapped and ungapped extension procedures have been rewritten
  /// and tuned for maximal performances. Small differences exist,
  /// especially for deciding if it is worth to continue the extension."
  BlastOptions() {
    dust_params.level = 18;       // slightly more aggressive DUST
    scoring.xdrop_ungapped = 20;  // NCBI blastn-flavored, vs SCORIS-N's 16
    scoring.xdrop_gapped = 25;    // vs SCORIS-N's 20
  }

  int w = 11;
  align::ScoringParams scoring;
  int min_hsp_score = 25;
  double max_evalue = 1e-3;
  bool dust = true;
  filter::DustParams dust_params;
  /// Strands of bank2 to search (paper runs blastall with -S 1 = plus).
  seqio::Strand strand = seqio::Strand::kPlus;
  int threads = 1;  ///< used by the shared gapped stage
  std::size_t max_gap_extent = 1u << 20;
  /// Classic two-hit trigger: require a second non-overlapping word hit on
  /// the same diagonal within `two_hit_window` before extending (Gapped
  /// BLAST, Altschul 1997). Off by default — blastn 2.2.x used one-hit for
  /// nucleotide searches, but the option is part of the family.
  bool two_hit = false;
  int two_hit_window = 40;
};

struct BlastStats {
  double index_seconds = 0.0;
  double scan_seconds = 0.0;    ///< seed scan + ungapped extension
  double gapped_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t hit_pairs = 0;       ///< lookup-word hits examined
  std::size_t verified_words = 0;  ///< hits surviving full-word verification
  std::size_t diag_skipped = 0;    ///< hits inside an extended region
  std::size_t two_hit_deferred = 0;  ///< first hits waiting for a partner
  std::size_t hsps = 0;            ///< unique HSPs above S1
  std::size_t duplicate_hsps = 0;  ///< removed by the explicit dedup
  std::size_t diag_array_bytes = 0;
  core::GappedStageStats gapped;
  std::size_t alignments = 0;
};

struct BlastResult {
  std::vector<align::GappedAlignment> alignments;
  BlastStats stats;
};

class BlastN {
 public:
  explicit BlastN(BlastOptions options = {});

  /// Compare bank1 (database / m8 query column) against bank2 (scanned
  /// stream / m8 subject column).  Same orientation as core::Pipeline so
  /// outputs are directly comparable.
  [[nodiscard]] BlastResult run(const seqio::SequenceBank& bank1,
                                const seqio::SequenceBank& bank2) const;

  [[nodiscard]] const BlastOptions& options() const { return options_; }
  [[nodiscard]] const stats::KarlinParams& karlin() const { return karlin_; }

 private:
  [[nodiscard]] BlastResult run_single(const seqio::SequenceBank& bank1,
                                       const seqio::SequenceBank& bank2,
                                       bool minus) const;

  BlastOptions options_;
  stats::KarlinParams karlin_;
};

}  // namespace scoris::blast
