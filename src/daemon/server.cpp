#include "daemon/server.hpp"

#include <exception>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "compare/m8.hpp"
#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"
#include "seqio/fasta.hpp"
#include "util/timer.hpp"

namespace scoris::daemon {

namespace {

/// Daemon-level metrics in the process registry.  References are
/// resolved once (registration takes the registry lock) and reused;
/// every increment after that is a relaxed sharded atomic.
struct DaemonMetrics {
  obs::Counter& connections_accepted;
  obs::Counter& busy_refusals;
  obs::Counter& queries_started;
  obs::Counter& queries_completed;
  obs::Counter& queries_errored;
  obs::Counter& bytes_sent;
  obs::Gauge& active_connections;
  obs::Histogram& query_seconds;

  static DaemonMetrics& get() {
    static DaemonMetrics* m = [] {
      obs::Registry& r = obs::Registry::global();
      return new DaemonMetrics{
          r.counter("scorisd_connections_accepted_total",
                    "Connections admitted (HELO sent)"),
          r.counter("scorisd_busy_refusals_total",
                    "Connections refused with BUSY (admission control)"),
          r.counter("scorisd_queries_started_total",
                    "QRY frames whose processing began"),
          r.counter("scorisd_queries_completed_total",
                    "Queries that reached DONE"),
          r.counter("scorisd_queries_errored_total",
                    "Queries that ended in ERR or a dropped connection"),
          r.counter("scorisd_bytes_sent_total",
                    "m8 result bytes streamed to clients"),
          r.gauge("scorisd_active_connections",
                  "Currently admitted client connections"),
          r.histogram("scorisd_query_seconds",
                      "Server-side wall time per query",
                      obs::latency_buckets()),
      };
    }();
    return *m;
  }
};

}  // namespace

void SocketM8Sink::on_group(std::span<const align::GappedAlignment> hits,
                            const HitBatch& batch) {
  // The same conversion path as M8Writer, so a networked query is
  // byte-identical to a local `scoris search` over the same inputs.
  for (const align::GappedAlignment& a : hits) {
    const std::string line =
        compare::format_m8(compare::to_m8(a, *batch.bank1, *batch.bank2));
    buffer_ += line;
    buffer_ += '\n';
    row_bytes_ += line.size() + 1;
    ++rows_;
    if (buffer_.size() >= chunk_bytes_) {
      // send_all blocks while the client's receive window is full: the
      // engine's delivery thread stalls here, which is exactly the
      // per-query backpressure that keeps a slow client from ballooning
      // the daemon's memory.  A vanished client throws NetError out
      // through the engine, unwinding (and spill-cleaning) this query
      // only.
      net::write_frame(*sock_, net::kRowsTag, std::string_view(buffer_));
      buffer_.clear();
    }
  }
}

void SocketM8Sink::flush() {
  if (!buffer_.empty()) {
    net::write_frame(*sock_, net::kRowsTag, std::string_view(buffer_));
    buffer_.clear();
  }
}

struct Server::Shared {
  const Session* session = nullptr;
  ServerConfig config;
  net::WakePipe wake;
  std::atomic<bool> stopping{false};
  std::atomic<std::size_t> active{0};
  std::atomic<std::uint64_t> next_conn_id{1};

  /// nullptr-safe logger access — `log().info(...)` works whether or
  /// not the embedder provided one.
  [[nodiscard]] obs::Logger& log() {
    static obs::Logger silent(null_stream(), obs::LogLevel::kError);
    return config.logger != nullptr ? *config.logger : silent;
  }

  static std::ostream& null_stream() {
    // An ostream with no streambuf sets badbit and discards all writes.
    static std::ostream* s = new std::ostream(nullptr);
    return *s;
  }

  // Drain coordination and counters.  `active` is decremented under the
  // mutex so the drain wait cannot miss the final notify.
  util::Mutex mu;
  util::CondVar cv;
  ServerCounters counters SCORIS_GUARDED_BY(mu);

  bool admit() {
    std::size_t current = active.load(std::memory_order_relaxed);
    while (current < config.max_clients) {
      if (active.compare_exchange_weak(current, current + 1,
                                       std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  void release() {
    {
      util::MutexLock lock(mu);
      active.fetch_sub(1, std::memory_order_acq_rel);
    }
    cv.notify_all();
  }

  void count(std::uint64_t ServerCounters::* field) {
    util::MutexLock lock(mu);
    counters.*field += 1;
  }
};

Server::Server(const Session& session, ServerConfig config)
    : shared_(std::make_shared<Shared>()) {
  shared_->session = &session;
  shared_->config = std::move(config);
  net::ignore_sigpipe();
}

Server::~Server() {
  // Detached stragglers own shared_ and exit on the wake signal; nothing
  // here blocks on them.
  shared_->stopping.store(true, std::memory_order_release);
  shared_->wake.signal_stop();
  if (bound_ &&
      shared_->config.endpoint.kind == net::Endpoint::Kind::kUnix) {
    std::error_code ec;
    std::filesystem::remove(shared_->config.endpoint.path, ec);
  }
}

void Server::bind() {
  if (bound_) return;
  listener_ =
      net::listen_endpoint(shared_->config.endpoint, shared_->config.backlog);
  bound_ = true;
}

const net::Endpoint& Server::endpoint() const {
  return shared_->config.endpoint;
}

ServerCounters Server::counters() const {
  util::MutexLock lock(shared_->mu);
  return shared_->counters;
}

void Server::request_stop() {
  // No locks, no allocation: stores + one write(2).  Callable from a
  // signal handler.
  shared_->stopping.store(true, std::memory_order_release);
  shared_->wake.signal_stop();
}

void Server::serve() {
  bind();
  Shared& shared = *shared_;
  while (!shared.stopping.load(std::memory_order_acquire)) {
    const int ready = net::wait_readable(listener_.fd(),
                                         shared.wake.read_fd(), -1);
    if ((ready & 2) != 0) break;  // wake pipe: shutdown requested
    if ((ready & 1) == 0) continue;
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) continue;
    if (!shared.admit()) {
      shared.count(&ServerCounters::rejected);
      DaemonMetrics::get().busy_refusals.inc();
      shared.log().warn("connection refused",
                        {obs::kv("reason", "max clients"),
                         obs::kv("max_clients",
                                 static_cast<unsigned long long>(
                                     shared.config.max_clients))});
      try {
        net::PayloadWriter busy;
        busy.put_string("all " +
                        std::to_string(shared.config.max_clients) +
                        " client slots are in use, try again later");
        const std::vector<std::uint8_t> payload = busy.take();
        net::write_frame(client, net::kBusyTag, payload);
      } catch (const net::NetError&) {
        // The refused client vanished first; nothing to tell it.
      }
      continue;
    }
    shared.count(&ServerCounters::accepted);
    DaemonMetrics::get().connections_accepted.inc();
    DaemonMetrics::get().active_connections.add(1);
    const std::uint64_t conn_id =
        shared.next_conn_id.fetch_add(1, std::memory_order_relaxed);
    shared.log().info("connection accepted", {obs::kv("conn", conn_id)});
    std::thread(&Server::handle_client, shared_, std::move(client), conn_id)
        .detach();
  }
  // Stop accepting, then drain: in-flight queries finish and stream
  // their DONE; idle handlers see the (never-drained) wake byte and
  // exit.
  listener_.close();
  util::MutexLock lock(shared.mu);
  while (shared.active.load(std::memory_order_acquire) != 0) {
    shared.cv.wait(shared.mu);
  }
}

void Server::handle_client(std::shared_ptr<Shared> shared,
                           net::Socket client, std::uint64_t conn_id) {
  // The admission slot is held for the connection's whole lifetime and
  // released on every exit path, including throws.
  struct SlotGuard {
    Shared& shared;
    std::uint64_t conn_id;
    ~SlotGuard() {
      DaemonMetrics::get().active_connections.sub(1);
      shared.log().info("connection closed", {obs::kv("conn", conn_id)});
      shared.release();
    }
  } guard{*shared, conn_id};

  try {
    net::PayloadWriter hello;
    hello.put_u32(net::kProtocolVersion);
    hello.put_u64(shared->config.max_query_bytes);
    const std::vector<std::uint8_t> payload = hello.take();
    net::write_frame(client, net::kHelloTag, payload);

    net::Frame frame;
    for (;;) {
      // Between queries the handler parks on poll so an idle connection
      // costs no CPU and shutdown does not have to wait for it.
      const int ready = net::wait_readable(client.fd(),
                                           shared->wake.read_fd(), -1);
      if ((ready & 2) != 0 &&
          shared->stopping.load(std::memory_order_acquire)) {
        return;  // idle at shutdown: close without ceremony
      }
      if ((ready & 1) == 0) continue;
      if (!net::read_frame(client, frame)) return;  // client hung up
      if (frame.tag == net::kStatTag) {
        // Snapshot outside any lock the query path touches; the render
        // only takes the registry's registration mutex.
        const std::string snapshot =
            obs::Registry::global().render_prometheus();
        net::write_frame(client, net::kStatTag, snapshot);
        shared->log().debug("stats snapshot served",
                            {obs::kv("conn", conn_id),
                             obs::kv("bytes", snapshot.size())});
        continue;
      }
      if (frame.tag != net::kQueryTag) {
        throw net::NetError("expected QRY or STAT, got '" +
                            net::tag_name(frame.tag) + "'");
      }
      serve_query(*shared, client, frame, conn_id);
    }
  } catch (const std::exception& e) {
    // Transport died or the client broke protocol: this connection is
    // over, every other client is untouched.
    shared->count(&ServerCounters::failed);
    shared->log().warn("connection failed", {obs::kv("conn", conn_id),
                                             obs::kv("error", e.what())});
  }
}

void Server::serve_query(Shared& shared, net::Socket& client,
                         const net::Frame& request, std::uint64_t conn_id) {
  // Per-query failures (bad FASTA, oversized payload, engine errors)
  // produce an ERR frame and leave the connection serving; only a dead
  // transport (NetError from a send) propagates to handle_client.
  DaemonMetrics& metrics = DaemonMetrics::get();
  metrics.queries_started.inc();
  util::WallTimer timer;
  std::string error;
  try {
    if (request.payload.size() > shared.config.max_query_bytes) {
      throw std::runtime_error(
          "query of " + std::to_string(request.payload.size()) +
          " bytes exceeds the server limit of " +
          std::to_string(shared.config.max_query_bytes));
    }
    net::PayloadReader reader(request.payload, "QRY");
    const std::uint8_t strand_byte = reader.get_u8();
    const seqio::SequenceBank bank2 =
        seqio::read_fasta_string(reader.rest(), "query");

    SearchLimits limits = shared.config.base_limits;
    switch (static_cast<net::QueryStrand>(strand_byte)) {
      case net::QueryStrand::kDefault:
        break;
      case net::QueryStrand::kPlus:
        limits.strand = seqio::Strand::kPlus;
        break;
      case net::QueryStrand::kMinus:
        limits.strand = seqio::Strand::kMinus;
        break;
      case net::QueryStrand::kBoth:
        limits.strand = seqio::Strand::kBoth;
        break;
      default:
        throw std::runtime_error("bad strand byte " +
                                 std::to_string(strand_byte));
    }

    SocketM8Sink sink(client, shared.config.chunk_bytes);
    shared.session->search(bank2, sink, limits);
    sink.flush();

    const double seconds = timer.seconds();
    net::PayloadWriter done;
    done.put_u64(sink.rows());
    done.put_u64(sink.row_bytes());
    done.put_f64(seconds);
    const std::vector<std::uint8_t> payload = done.take();
    net::write_frame(client, net::kDoneTag, payload);
    shared.count(&ServerCounters::served);
    metrics.queries_completed.inc();
    metrics.bytes_sent.inc(sink.row_bytes());
    metrics.query_seconds.observe(seconds);
    shared.log().info("query served",
                      {obs::kv("conn", conn_id), obs::kv("rows", sink.rows()),
                       obs::kv("bytes", sink.row_bytes()),
                       obs::kv("seconds", seconds)});
    return;
  } catch (const net::NetError&) {
    shared.count(&ServerCounters::failed);
    metrics.queries_errored.inc();
    metrics.query_seconds.observe(timer.seconds());
    throw;  // connection-fatal: the handler closes it
  } catch (const std::exception& e) {
    error = e.what();
  }
  shared.count(&ServerCounters::failed);
  metrics.queries_errored.inc();
  metrics.query_seconds.observe(timer.seconds());
  shared.log().warn("query failed", {obs::kv("conn", conn_id),
                                     obs::kv("error", error)});
  net::PayloadWriter err;
  err.put_string(error);
  const std::vector<std::uint8_t> payload = err.take();
  net::write_frame(client, net::kErrorTag, payload);
}

}  // namespace scoris::daemon
