// scorisd — the scoris network daemon.
//
// One Server wraps one immutable scoris::Session (the resident prepared
// reference) and serves it to any number of concurrent clients over the
// net/frame.hpp protocol.  This is the service the ROADMAP's Session API
// was built for: the expensive reference preparation happens once, and
// every client query rides Session::search's documented thread-safety —
// the daemon adds only transport, admission, and lifecycle.
//
// Architecture:
//
//   * serve() is the blocking accept loop.  Each accepted connection is
//     admitted (CAS on an active-client counter) or refused with a BUSY
//     frame; admitted clients get a detached handler thread.
//   * Handler threads hold a shared_ptr to the server's internal state,
//     so a Server that is destroyed while stragglers run cannot leave
//     them with dangling pointers (serve() drains before returning, but
//     the ownership makes that a liveness property, not a memory-safety
//     one).
//   * Every blocking read (accept loop, idle client connections) also
//     polls a WakePipe.  request_stop() writes one byte to it — nothing
//     else — so it is async-signal-safe and callable straight from a
//     SIGINT/SIGTERM handler.  The byte is never drained: the wake is
//     level-triggered and reaches every poller.
//   * Shutdown drains: in-flight queries run to completion and stream
//     their DONE; only *idle* connections are closed.  serve() returns
//     once the last handler exits.
//
// Failure containment: a SinkError/NetError inside one query (client
// hung up mid-stream, send failed) aborts that query alone — the
// handler logs-by-frame where possible and moves on; other clients
// never notice.  RunMerger's RAII spill directory reclaims the aborted
// query's temp files on the unwind path, so a long-lived daemon does
// not leak spill space however clients die.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "api/session.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/log.hpp"

namespace scoris::daemon {

struct ServerConfig {
  net::Endpoint endpoint;           ///< listen address (TCP or unix)
  int backlog = 16;                 ///< kernel accept-queue bound
  std::size_t max_clients = 4;      ///< concurrent admitted connections
  /// Largest QRY payload accepted (advertised in HELO; larger queries
  /// get an ERR and the connection survives).
  std::uint64_t max_query_bytes = std::uint64_t{64} << 20;
  /// ROWS frame flush threshold: m8 text is batched into frames of
  /// roughly this many bytes.  Small values exist for tests that need
  /// many frames in flight (mid-stream disconnect coverage).
  std::size_t chunk_bytes = std::size_t{256} << 10;
  /// Applied to every query (delivery budget, tmp dir, ...); the QRY
  /// strand byte overrides `base_limits.strand` per query.
  SearchLimits base_limits;
  /// Structured logger for lifecycle + per-connection events (not
  /// owned; must outlive serve()).  nullptr silences the daemon —
  /// metrics still accumulate in obs::Registry::global().
  obs::Logger* logger = nullptr;
};

/// Tallies exposed for tests and the serve-loop log line.
struct ServerCounters {
  std::uint64_t accepted = 0;  ///< connections admitted (HELO sent)
  std::uint64_t rejected = 0;  ///< connections refused (BUSY sent)
  std::uint64_t served = 0;    ///< queries that reached DONE
  std::uint64_t failed = 0;    ///< queries that ended in ERR or a drop
};

/// Streams m8 rows from a Session::search into ROWS frames.  Public so
/// the tests can drive it against a socketpair without a full server.
class SocketM8Sink final : public HitSink {
 public:
  SocketM8Sink(net::Socket& sock, std::size_t chunk_bytes)
      : sock_(&sock), chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  void on_group(std::span<const align::GappedAlignment> hits,
                const HitBatch& batch) override;

  /// Send any buffered tail.  Called after the search returns; not from
  /// on_stats, because a failed flush must abort the query *before* the
  /// DONE frame is composed.
  void flush();

  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] std::uint64_t row_bytes() const { return row_bytes_; }

 private:
  net::Socket* sock_;
  std::size_t chunk_bytes_;
  std::string buffer_;
  std::uint64_t rows_ = 0;
  std::uint64_t row_bytes_ = 0;
};

class Server {
 public:
  /// The session must outlive serve(); the server never copies it.
  Server(const Session& session, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen now (throws NetError on failure), so callers know the
  /// endpoint is live — and, for TCP port 0, what port it resolved to —
  /// before serve() blocks.
  void bind();

  /// Accept loop.  Blocks until request_stop(), then drains in-flight
  /// queries and returns.  Calls bind() if it has not happened yet.
  void serve();

  /// Async-signal-safe: one write(2) on the wake pipe.  Safe from any
  /// thread and from SIGINT/SIGTERM handlers; idempotent.
  void request_stop();

  /// The resolved listen endpoint (real port for TCP port-0 binds).
  /// Valid after bind().
  [[nodiscard]] const net::Endpoint& endpoint() const;

  [[nodiscard]] ServerCounters counters() const;

 private:
  struct Shared;

  static void handle_client(std::shared_ptr<Shared> shared,
                            net::Socket client, std::uint64_t conn_id);
  static void serve_query(Shared& shared, net::Socket& client,
                          const net::Frame& request, std::uint64_t conn_id);

  std::shared_ptr<Shared> shared_;
  net::Socket listener_;
  bool bound_ = false;
};

}  // namespace scoris::daemon
