// The `scoris` command-line driver.
//
// Seven entry forms share one binary:
//   scoris --bank1 a.fa --bank2 b.fa [options]   # compare (original form)
//   scoris index --bank ref.fa --out ref.scix    # prebuild a .scix artifact
//   scoris search --index ref.scix --bank2 b.fa  # compare against artifact
//   scoris serve --index ref.scix --listen ADDR  # scorisd network daemon
//   scoris query --connect ADDR --bank2 b.fa     # query a running daemon
//   scoris stats --connect ADDR                  # scrape daemon metrics
//   scoris worker --listen ADDR                  # distributed shard worker
//
// Wires util::Args -> FASTA/.scob/.scix loading -> scoris::Session ->
// streaming M8Writer output.  Option values are validated by
// core::Options::validate() (the same check Session's constructor runs),
// so the CLI and the library reject identical configurations.  The whole
// driver lives in the library (not in main.cpp) so the test suite can run
// it in-process with captured streams and asserted exit codes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/options.hpp"
#include "net/socket.hpp"

namespace scoris::cli {

/// Exit codes returned by run() (and hence by the `scoris` binary).
enum ExitCode : int {
  kOk = 0,            ///< pipeline ran, m8 written
  kRuntimeError = 1,  ///< bank/artifact load, output write, or pipeline failure
  kUsage = 2,         ///< bad / missing / unknown arguments (usage printed)
};

/// Everything the compare/search driver parsed from argv, exposed for
/// tests.  `search` mode fills index_path instead of bank1_path.
struct CliConfig {
  std::string bank1_path;
  std::string bank2_path;
  std::string index_path;  ///< search only: .scix artifact (bank1 side)
  std::string out_path;    ///< empty = stdout
  int w = 11;
  int threads = 1;
  /// Step-2 seed-code shards per (strand x slice) group; 0 = auto.
  std::size_t shards = 0;
  std::string schedule = "stealing";  ///< static | stealing
  int min_hsp_score = 25;
  double max_evalue = 1e-3;
  std::string strand = "plus";  ///< plus | minus | both
  bool dust = true;
  bool asymmetric = false;
  /// Pin step 2 to the scalar match-run kernel (Options::
  /// force_scalar_kernel); output-invariant, for A/B timing and CI.
  bool force_scalar = false;
  bool stats = false;
  bool help = false;
  bool version = false;
  /// --kernel: print the dispatched match-run kernel name and exit.
  bool kernel_probe = false;
  /// When > 0, stream bank2 in slices so the two in-memory indexes stay
  /// under this budget (SearchLimits::memory_budget_bytes); available on
  /// both the flat compare form and `search`.
  std::size_t memory_budget_mb = 0;
  /// When > 0, bound the kGlobal cross-group merge's delivery memory
  /// (Options::delivery_budget_bytes = KB << 10): sorted group runs
  /// spill to temp files over the budget.  KB granularity so spill
  /// behaviour is reachable on small banks.
  std::size_t delivery_budget_kb = 0;
  /// Spill-run directory (Options::tmp_dir); empty = system temp dir.
  std::string tmp_dir;
  /// When non-empty, record per-stage spans (index/scan/gapped/merge)
  /// and write them as Chrome trace_event JSON to this path — load it in
  /// chrome://tracing or Perfetto (see docs/OBSERVABILITY.md).
  std::string trace_json_path;
  /// Comma-separated `scoris worker` endpoints ("host:port,unix:/p").
  /// Non-empty switches the compare/search drivers onto the distributed
  /// coordinator (dist/coordinator.hpp); output stays byte-identical to
  /// the single-process run.
  std::string workers;
  /// Per-worker connect deadline and recv-silence bound (milliseconds).
  int worker_timeout_ms = 30000;
  /// Lower bound on bank2 slices for distribution; 0 = auto,
  /// 2 * (workers + 1).  Output-invariant (balance knob only).
  std::size_t dist_slices = 0;
  /// The validated option set the drivers execute with — filled (and
  /// checked via core::Options::validate) during parsing, so a config
  /// that parsed successfully is guaranteed runnable.
  core::Options options;
};

/// What `scoris index` parsed from argv.  (Stride-subsampled payloads
/// exist in the .scix format for the library API, but the CLI always
/// builds stride-1 indexes — that is the only stride `search` consumes
/// for the bank1 side.)
struct IndexCliConfig {
  std::string bank_path;
  std::string out_path;
  int w = 11;
  bool dust = true;
  bool stats = false;
  bool help = false;
};

/// What `scoris serve` parsed from argv.  The session surface (reference
/// path, W, threads, spill budget, ...) rides in `search` — the same
/// fields, flags, and validation as `scoris search` — so a serve
/// configuration is exactly a search configuration plus daemon knobs.
struct ServeCliConfig {
  CliConfig search;
  net::Endpoint endpoint;       ///< parsed --listen
  std::size_t max_clients = 4;  ///< concurrent admitted connections
  int backlog = 16;             ///< kernel accept-queue bound
  std::string log_level = "info";  ///< error | warn | info | debug
  std::string log_file;  ///< structured-log path; empty = stderr stream
  bool help = false;
};

/// What `scoris query` parsed from argv.
struct QueryCliConfig {
  net::Endpoint endpoint;  ///< parsed --connect
  std::string bank2_path;
  std::string out_path;    ///< empty = stdout
  std::string strand;      ///< empty = server default; plus|minus|both
  bool stats = false;      ///< print the DONE summary to stderr
  /// Retry a BUSY admission refusal up to this many times with capped
  /// exponential backoff (net::RetryPolicy — the same policy the
  /// distributed coordinator re-dials workers with).  0 = fail fast.
  int retry = 0;
  int retry_backoff_ms = 100;  ///< delay before the first retry
  bool help = false;
};

/// What `scoris worker` parsed from argv.
struct WorkerCliConfig {
  net::Endpoint endpoint;  ///< parsed --listen
  int threads = 1;         ///< engine threads per job
  int backlog = 16;        ///< kernel accept-queue bound
  std::size_t max_jobs = 2;  ///< concurrent coordinator connections
  std::string log_level = "info";  ///< error | warn | info | debug
  std::string log_file;  ///< structured-log path; empty = stderr stream
  bool help = false;
};

/// What `scoris stats` parsed from argv.
struct StatsCliConfig {
  net::Endpoint endpoint;  ///< parsed --connect
  bool help = false;
};

/// Parse argv into a CliConfig (the flat compare form). On error, writes a
/// one-line diagnostic to `err` and returns false. `--bank1/--bank2` may
/// also be given as the two positional arguments.
bool parse_cli(int argc, const char* const* argv, CliConfig& config,
               std::ostream& err);

/// Parse the `scoris search` argv (argv[0] is the subcommand token).
bool parse_search_cli(int argc, const char* const* argv, CliConfig& config,
                      std::ostream& err);

/// Parse the `scoris index` argv (argv[0] is the subcommand token).
bool parse_index_cli(int argc, const char* const* argv,
                     IndexCliConfig& config, std::ostream& err);

/// Parse the `scoris serve` argv (argv[0] is the subcommand token).
bool parse_serve_cli(int argc, const char* const* argv,
                     ServeCliConfig& config, std::ostream& err);

/// Parse the `scoris query` argv (argv[0] is the subcommand token).
bool parse_query_cli(int argc, const char* const* argv,
                     QueryCliConfig& config, std::ostream& err);

/// Parse the `scoris stats` argv (argv[0] is the subcommand token).
bool parse_stats_cli(int argc, const char* const* argv,
                     StatsCliConfig& config, std::ostream& err);

/// Parse the `scoris worker` argv (argv[0] is the subcommand token).
bool parse_worker_cli(int argc, const char* const* argv,
                      WorkerCliConfig& config, std::ostream& err);

/// Full driver: dispatch on the `index` / `search` subcommand (flat
/// compare otherwise), load inputs, run, write m8 to `out` (or to
/// config.out_path when given). Diagnostics and --stats go to `err`.
/// Returns an ExitCode value.
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

/// The usage texts printed by --help and on usage errors.
void print_usage(std::ostream& os, const std::string& program);
void print_index_usage(std::ostream& os, const std::string& program);
void print_search_usage(std::ostream& os, const std::string& program);
void print_serve_usage(std::ostream& os, const std::string& program);
void print_query_usage(std::ostream& os, const std::string& program);
void print_stats_usage(std::ostream& os, const std::string& program);
void print_worker_usage(std::ostream& os, const std::string& program);

}  // namespace scoris::cli
