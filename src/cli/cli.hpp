// The `scoris` command-line driver.
//
// Wires util::Args -> FASTA/.scob loading -> core::Pipeline -> m8 output.
// The whole driver lives in the library (not in main.cpp) so the test suite
// can run it in-process with captured streams and asserted exit codes.
#pragma once

#include <iosfwd>
#include <string>

namespace scoris::cli {

/// Exit codes returned by run() (and hence by the `scoris` binary).
enum ExitCode : int {
  kOk = 0,            ///< pipeline ran, m8 written
  kRuntimeError = 1,  ///< bank load, output write, or pipeline failure
  kUsage = 2,         ///< bad / missing / unknown arguments (usage printed)
};

/// Everything the driver parsed from argv, exposed for tests.
struct CliConfig {
  std::string bank1_path;
  std::string bank2_path;
  std::string out_path;  ///< empty = stdout
  int w = 11;
  int threads = 1;
  int min_hsp_score = 25;
  double max_evalue = 1e-3;
  std::string strand = "plus";  ///< plus | minus | both
  bool dust = true;
  bool asymmetric = false;
  bool stats = false;
  bool help = false;
  bool version = false;
};

/// Parse argv into a CliConfig. On error, writes a one-line diagnostic to
/// `err` and returns false. `--bank1/--bank2` may also be given as the two
/// positional arguments.
bool parse_cli(int argc, const char* const* argv, CliConfig& config,
               std::ostream& err);

/// Full driver: parse, load banks, run the pipeline, write m8 to `out`
/// (or to config.out_path when given). Diagnostics and --stats go to `err`.
/// Returns an ExitCode value.
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

/// The usage text printed by --help and on usage errors.
void print_usage(std::ostream& os, const std::string& program);

}  // namespace scoris::cli
