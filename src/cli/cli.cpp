#include "cli/cli.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "compare/m8.hpp"
#include "core/pipeline.hpp"
#include "seqio/fasta.hpp"
#include "seqio/sequence_bank.hpp"
#include "seqio/serialize.hpp"
#include "seqio/strand.hpp"
#include "util/argparse.hpp"

namespace scoris::cli {

namespace {

constexpr const char* kVersion = "scoris 0.1.0 (SCORIS-N, Lavenier'08 ORIS)";

/// Flags the driver understands; anything else is a usage error.
const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> kKnown = {
      "bank1",   "bank2",      "out",   "w",       "threads",
      "strand",  "evalue",     "dust",  "no-dust", "asymmetric",
      "s1",      "stats",      "help",  "version",
  };
  return kKnown;
}

/// Load a bank from FASTA, or from the binary .scob format when the path
/// ends in ".scob".
seqio::SequenceBank load_bank(const std::string& path) {
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".scob") == 0) {
    return seqio::load_bank_file(path);
  }
  return seqio::read_fasta_file(path);
}

/// Strict numeric flag parsing: Args::get_int/get_double silently fall back
/// on unparsable text, which would let a typo like `--evalue 1e-3x` run with
/// the default. Reject instead, and range-check before narrowing so huge
/// values cannot wrap into the valid range.
bool parse_int_flag(const util::Args& args, const std::string& name,
                    std::int64_t lo, std::int64_t hi, int& value,
                    std::ostream& err) {
  if (!args.has(name)) return true;
  const std::optional<std::int64_t> v = args.get_int_strict(name);
  if (!v) {
    err << "error: --" << name << " expects an integer, got '"
        << args.get(name) << "'\n";
    return false;
  }
  if (*v < lo || *v > hi) {
    err << "error: --" << name << " must be in [" << lo << ", " << hi
        << "], got " << *v << '\n';
    return false;
  }
  value = static_cast<int>(*v);
  return true;
}

bool parse_double_flag(const util::Args& args, const std::string& name,
                       double& value, std::ostream& err) {
  if (!args.has(name)) return true;
  const std::optional<double> v = args.get_double_strict(name);
  if (!v) {
    err << "error: --" << name << " expects a number, got '" << args.get(name)
        << "'\n";
    return false;
  }
  value = *v;
  return true;
}

/// Args greedily binds `--flag token` even for boolean flags, so
/// `scoris --stats a.fa b.fa` would silently swallow `a.fa`. Catch any
/// value that is not a boolean spelling and say what happened.
bool check_boolean_flag(const util::Args& args, const std::string& name,
                        std::ostream& err) {
  if (!args.has(name)) return true;
  const std::string raw = args.get(name);
  if (raw == "true" || raw == "false" || raw == "1" || raw == "0" ||
      raw == "yes" || raw == "no") {
    return true;
  }
  err << "error: --" << name << " does not take a value (got '" << raw
      << "'); place boolean flags after the banks or write --" << name
      << "=true\n";
  return false;
}

}  // namespace

void print_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program
     << " --bank1 <a.fa> --bank2 <b.fa> [options]\n"
     << "       " << program << " <a.fa> <b.fa> [options]\n"
     << "\n"
     << "Compare two DNA banks with the ORIS pipeline and write BLAST -m 8\n"
     << "tabular output. Banks are FASTA files (or binary .scob banks).\n"
     << "\n"
     << "options:\n"
     << "  --bank1 FILE    query-side bank (m8 qseqid column)\n"
     << "  --bank2 FILE    subject-side bank (m8 sseqid column)\n"
     << "  --out FILE      write m8 output to FILE (default: stdout)\n"
     << "  --w N           seed length, 4..14 (default 11)\n"
     << "  --threads N     worker threads for steps 2-3 (default 1)\n"
     << "  --strand S      plus (default, paper's -S 1), minus, or both\n"
     << "  --evalue E      e-value cutoff (default 1e-3)\n"
     << "  --dust BOOL     low-complexity filter (default true)\n"
     << "  --no-dust       shorthand for --dust false\n"
     << "  --asymmetric    10-nt words, stride-2 index on bank2\n"
     << "  --s1 SCORE      minimum HSP raw score (default 25)\n"
     << "  --stats         print per-step statistics to stderr\n"
     << "  --help          show this message and exit\n"
     << "  --version       show version and exit\n";
}

bool parse_cli(int argc, const char* const* argv, CliConfig& config,
               std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  for (const std::string& name : args.flag_names()) {
    const auto& known = known_flags();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      err << "error: unknown flag --" << name << '\n';
      return false;
    }
  }

  for (const char* name : {"stats", "asymmetric", "dust", "no-dust", "help",
                           "version"}) {
    if (!check_boolean_flag(args, name, err)) return false;
  }

  config.help = args.get_flag("help");
  config.version = args.get_flag("version");
  if (config.help || config.version) return true;

  config.bank1_path = args.get("bank1");
  config.bank2_path = args.get("bank2");
  const auto& positional = args.positional();
  if (!positional.empty()) {
    if (!config.bank1_path.empty() || !config.bank2_path.empty()) {
      err << "error: unexpected positional argument '" << positional[0]
          << "' (banks already given via --bank1/--bank2)\n";
      return false;
    }
    if (positional.size() != 2) {
      err << "error: expected exactly two positional banks, got "
          << positional.size() << '\n';
      return false;
    }
    config.bank1_path = positional[0];
    config.bank2_path = positional[1];
  }
  if (config.bank1_path.empty() || config.bank2_path.empty()) {
    err << "error: both --bank1 and --bank2 are required\n";
    return false;
  }

  config.out_path = args.get("out");
  if (!parse_int_flag(args, "w", 4, 14, config.w, err)) return false;
  if (!parse_int_flag(args, "threads", 1, 1024, config.threads, err)) {
    return false;
  }
  if (!parse_int_flag(args, "s1", 0, 1000000000, config.min_hsp_score, err)) {
    return false;
  }
  if (!parse_double_flag(args, "evalue", config.max_evalue, err)) return false;
  if (!(config.max_evalue > 0.0)) {
    err << "error: --evalue must be positive, got " << args.get("evalue")
        << '\n';
    return false;
  }

  config.strand = args.get("strand", config.strand);
  if (config.strand != "plus" && config.strand != "minus" &&
      config.strand != "both") {
    err << "error: --strand must be plus, minus or both, got '"
        << config.strand << "'\n";
    return false;
  }

  config.dust = args.get_flag("dust", true);
  if (args.get_flag("no-dust")) config.dust = false;
  config.asymmetric = args.get_flag("asymmetric");
  config.stats = args.get_flag("stats");
  return true;
}

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  const std::string program = argc > 0 ? argv[0] : "scoris";

  CliConfig config;
  if (!parse_cli(argc, argv, config, err)) {
    print_usage(err, program);
    return kUsage;
  }
  if (config.help) {
    print_usage(out, program);
    return kOk;
  }
  if (config.version) {
    out << kVersion << '\n';
    return kOk;
  }

  seqio::SequenceBank bank1;
  seqio::SequenceBank bank2;
  try {
    bank1 = load_bank(config.bank1_path);
    bank2 = load_bank(config.bank2_path);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  core::Options options;
  options.w = config.w;
  options.threads = config.threads;
  options.min_hsp_score = config.min_hsp_score;
  options.max_evalue = config.max_evalue;
  options.dust = config.dust;
  options.asymmetric = config.asymmetric;
  options.strand = config.strand == "minus"  ? seqio::Strand::kMinus
                   : config.strand == "both" ? seqio::Strand::kBoth
                                             : seqio::Strand::kPlus;

  // Open the output sink before the (potentially long) pipeline run so an
  // unwritable path fails fast instead of after all the compute.
  std::ofstream out_file;
  std::ostream* sink = &out;
  if (!config.out_path.empty()) {
    out_file.open(config.out_path);
    if (!out_file) {
      err << "error: cannot create " << config.out_path << '\n';
      return kRuntimeError;
    }
    sink = &out_file;
  }

  const core::Pipeline pipeline(options);
  core::Result result;
  try {
    result = pipeline.run(bank1, bank2);
  } catch (const std::exception& e) {
    err << "error: pipeline failed: " << e.what() << '\n';
    return kRuntimeError;
  }

  core::write_result_m8(*sink, result, bank1, bank2);
  sink->flush();
  if (!*sink) {
    err << "error: writing m8 output"
        << (config.out_path.empty() ? "" : " to " + config.out_path)
        << " failed\n";
    return kRuntimeError;
  }

  if (config.stats) {
    const core::PipelineStats& s = result.stats;
    err << "scoris: " << result.alignments.size() << " alignments, "
        << s.hit_pairs << " seed hits (" << s.order_aborts
        << " order-aborted), " << s.hsps << " HSPs, " << s.masked_bases
        << " DUST-masked bases\n"
        << "  step1 " << s.index_seconds << "s, step2 " << s.hsp_seconds
        << "s, step3 " << s.gapped_seconds << "s, total " << s.total_seconds
        << "s\n";
  }
  return kOk;
}

}  // namespace scoris::cli
