#include "cli/cli.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include <atomic>
#include <csignal>
#include <sstream>

#include "align/simd/kernel_dispatch.hpp"
#include "api/session.hpp"
#include "api/sinks.hpp"
#include "core/options.hpp"
#include "daemon/server.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "net/client.hpp"
#include "net/retry.hpp"
#include "net/socket.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "seqio/fasta.hpp"
#include "seqio/sequence_bank.hpp"
#include "seqio/serialize.hpp"
#include "seqio/strand.hpp"
#include "store/index_store.hpp"
#include "util/argparse.hpp"

namespace scoris::cli {

namespace {

constexpr const char* kVersion = "scoris 0.1.0 (SCORIS-N, Lavenier'08 ORIS)";

/// Flags the flat compare driver understands; anything else is a usage
/// error.
const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> kKnown = {
      "bank1",   "bank2",      "out",   "w",       "threads",
      "strand",  "evalue",     "dust",  "no-dust", "asymmetric",
      "s1",      "stats",      "help",  "version", "shards",
      "schedule", "memory-budget-mb", "delivery-budget-kb", "tmp-dir",
      "trace-json", "force-scalar", "kernel",
      "workers", "worker-timeout-ms", "dist-slices",
  };
  return kKnown;
}

const std::vector<std::string>& known_search_flags() {
  static const std::vector<std::string> kKnown = {
      "index",   "bank2",  "out",     "w",
      "threads", "strand", "evalue",  "dust",
      "no-dust", "asymmetric", "s1",  "stats",
      "memory-budget-mb", "help",     "shards",
      "schedule", "delivery-budget-kb", "tmp-dir",
      "trace-json", "force-scalar",
      "workers", "worker-timeout-ms", "dist-slices",
  };
  return kKnown;
}

const std::vector<std::string>& known_index_flags() {
  static const std::vector<std::string> kKnown = {
      "bank", "out", "w", "dust", "no-dust", "stats", "help",
  };
  return kKnown;
}

const std::vector<std::string>& known_serve_flags() {
  static const std::vector<std::string> kKnown = {
      "index",   "listen", "max-clients", "backlog",
      "w",       "threads", "strand",     "evalue",
      "dust",    "no-dust", "asymmetric", "s1",
      "shards",  "schedule", "memory-budget-mb",
      "delivery-budget-kb", "tmp-dir",    "help",
      "log-level", "log-file",
  };
  return kKnown;
}

const std::vector<std::string>& known_query_flags() {
  static const std::vector<std::string> kKnown = {
      "connect", "bank2", "out", "strand", "stats", "help",
      "retry", "retry-backoff-ms",
  };
  return kKnown;
}

const std::vector<std::string>& known_worker_flags() {
  static const std::vector<std::string> kKnown = {
      "listen", "threads", "backlog", "max-jobs",
      "log-level", "log-file", "help",
  };
  return kKnown;
}

const std::vector<std::string>& known_stats_flags() {
  static const std::vector<std::string> kKnown = {
      "connect", "help",
  };
  return kKnown;
}

bool parse_worker_list(const std::string& spec,
                       std::vector<net::Endpoint>& workers,
                       std::ostream& err);

/// Load a bank from FASTA, or from the binary .scob format when the path
/// ends in ".scob".
seqio::SequenceBank load_bank(const std::string& path) {
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".scob") == 0) {
    return seqio::load_bank_file(path);
  }
  return seqio::read_fasta_file(path);
}

/// Strict numeric flag parsing: Args::get_int/get_double silently fall back
/// on unparsable text, which would let a typo like `--evalue 1e-3x` run with
/// the default. Reject instead, and range-check before narrowing so huge
/// values cannot wrap into the valid range.  The range check goes through
/// core::check_range — the same helper Options::validate() uses — so the
/// CLI and the library reject with identical diagnostics.
bool parse_int_flag(const util::Args& args, const std::string& name,
                    std::int64_t lo, std::int64_t hi, int& value,
                    std::ostream& err) {
  if (!args.has(name)) return true;
  const std::optional<std::int64_t> v = args.get_int_strict(name);
  if (!v) {
    err << "error: --" << name << " expects an integer, got '"
        << args.get(name) << "'\n";
    return false;
  }
  if (const auto issue = core::check_range(name, *v, lo, hi)) {
    err << "error: " << issue->message << '\n';
    return false;
  }
  value = static_cast<int>(*v);
  return true;
}

bool parse_size_flag(const util::Args& args, const std::string& name,
                     int lo, int hi, std::size_t& value, std::ostream& err) {
  if (!args.has(name)) return true;
  int v = 0;
  if (!parse_int_flag(args, name, lo, hi, v, err)) return false;
  value = static_cast<std::size_t>(v);
  return true;
}

bool parse_double_flag(const util::Args& args, const std::string& name,
                       double& value, std::ostream& err) {
  if (!args.has(name)) return true;
  const std::optional<double> v = args.get_double_strict(name);
  if (!v) {
    err << "error: --" << name << " expects a number, got '" << args.get(name)
        << "'\n";
    return false;
  }
  value = *v;
  return true;
}

/// Args greedily binds `--flag token` even for boolean flags, so
/// `scoris --stats a.fa b.fa` would silently swallow `a.fa`. Catch any
/// value that is not a boolean spelling and say what happened.
bool check_boolean_flag(const util::Args& args, const std::string& name,
                        std::ostream& err) {
  if (!args.has(name)) return true;
  const std::string raw = args.get(name);
  if (raw == "true" || raw == "false" || raw == "1" || raw == "0" ||
      raw == "yes" || raw == "no") {
    return true;
  }
  err << "error: --" << name << " does not take a value (got '" << raw
      << "'); place boolean flags after the banks or write --" << name
      << "=true\n";
  return false;
}

bool reject_unknown_flags(const util::Args& args,
                          const std::vector<std::string>& known,
                          std::ostream& err) {
  for (const std::string& name : args.flag_names()) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      err << "error: unknown flag --" << name << '\n';
      return false;
    }
  }
  return true;
}

/// Map a parsed CliConfig onto core::Options and validate.  Options::
/// validate() (plus set_strand/set_schedule for the name-to-enum maps)
/// is the single source of truth for what is legal, so the CLI rejects
/// exactly what Session's constructor would reject — every diagnostic is
/// printed as "error: <message>" and the caller exits 2.
bool build_options(const CliConfig& config, core::Options& options,
                   std::ostream& err) {
  options = core::Options{};
  options.w = config.w;
  options.threads = config.threads;
  options.shards = config.shards;
  options.min_hsp_score = config.min_hsp_score;
  options.max_evalue = config.max_evalue;
  options.dust = config.dust;
  options.asymmetric = config.asymmetric;
  options.force_scalar_kernel = config.force_scalar;
  options.delivery_budget_bytes = config.delivery_budget_kb << 10;
  options.tmp_dir = config.tmp_dir;

  bool ok = true;
  const auto report = [&](const std::optional<core::OptionIssue>& issue) {
    if (issue) {
      err << "error: " << issue->message << '\n';
      ok = false;
    }
  };
  report(core::set_strand(options, config.strand));
  report(core::set_schedule(options, config.schedule));
  for (const core::OptionIssue& issue : options.validate()) {
    err << "error: " << issue.message << '\n';
    ok = false;
  }
  return ok;
}

/// Flags shared by the flat compare form and `scoris search`.  Numeric
/// values are parsed strictly (and range-checked through the same
/// core::check_range the library validator uses); names and the
/// assembled option set are validated by build_options afterwards.
bool parse_search_options(const util::Args& args, CliConfig& config,
                          std::ostream& err) {
  config.out_path = args.get("out");
  if (!parse_int_flag(args, "w", core::Options::kMinW, core::Options::kMaxW,
                      config.w, err)) {
    return false;
  }
  if (!parse_int_flag(args, "threads", core::Options::kMinThreads,
                      core::Options::kMaxThreads, config.threads, err)) {
    return false;
  }
  if (!parse_int_flag(args, "s1", 0, core::Options::kMaxHspScore,
                      config.min_hsp_score, err)) {
    return false;
  }
  if (!parse_double_flag(args, "evalue", config.max_evalue, err)) return false;

  config.strand = args.get("strand", config.strand);
  if (!parse_size_flag(args, "shards", 0,
                       static_cast<int>(core::Options::kMaxShards),
                       config.shards, err)) {
    return false;
  }
  config.schedule = args.get("schedule", config.schedule);
  if (!parse_size_flag(args, "memory-budget-mb", 1, 1 << 20,
                       config.memory_budget_mb, err)) {
    return false;
  }
  if (!parse_size_flag(args, "delivery-budget-kb", 1, 1 << 20,
                       config.delivery_budget_kb, err)) {
    return false;
  }
  config.tmp_dir = args.get("tmp-dir");
  config.trace_json_path = args.get("trace-json");

  config.workers = args.get("workers");
  if (!parse_int_flag(args, "worker-timeout-ms", 1, 1 << 30,
                      config.worker_timeout_ms, err)) {
    return false;
  }
  if (!parse_size_flag(args, "dist-slices", 0, 1 << 20, config.dist_slices,
                       err)) {
    return false;
  }

  config.dust = args.get_flag("dust", true);
  if (args.get_flag("no-dust")) config.dust = false;
  config.asymmetric = args.get_flag("asymmetric");
  config.force_scalar = args.get_flag("force-scalar");
  config.stats = args.get_flag("stats");

  return build_options(config, config.options, err);
}

void print_stats(std::ostream& err, const core::PipelineStats& s,
                 std::size_t alignments) {
  err << "scoris: " << alignments << " alignments, " << s.hit_pairs
      << " seed hits (" << s.order_aborts << " order-aborted), " << s.hsps
      << " HSPs, " << s.masked_bases << " DUST-masked bases\n"
      << "  step1 " << s.index_seconds << "s, step2 " << s.hsp_seconds
      << "s (kernel " << s.simd_kernel << "), step3 " << s.gapped_seconds
      << "s, total " << s.total_seconds << "s\n";
  // Index memory accounting (paper section 3.1: ~5 bytes per position =
  // 4-byte chain entry + 1-byte SEQ code; dictionaries are O(4^W) apart).
  const double per_pos =
      s.index_positions == 0
          ? 0.0
          : static_cast<double>(s.index_chain_bytes + s.index_positions) /
                static_cast<double>(s.index_positions);
  err << "  index memory: " << s.index_dict_bytes << " B dictionaries + "
      << s.index_chain_bytes << " B chains over " << s.index_positions
      << " positions (" << std::fixed << std::setprecision(2) << per_pos
      << " bytes/position incl. SEQ)\n"
      << std::defaultfloat << std::setprecision(6);
  // Delivery-path buffering: what the engine retained between a group
  // finishing and the sink receiving its alignments.  The kGlobal
  // cross-group merge used to be invisible here, undercounting the
  // worst consumer.
  err << "  delivery memory: peak " << s.peak_delivery_bytes << " B";
  if (s.spilled_runs > 0) {
    err << " (" << s.spilled_runs << " spill run(s), " << s.spill_bytes
        << " B on disk)";
  }
  err << '\n';
  // Scheduler balance: the spread of step-2 shard wall times.  A max far
  // above the median means one seed-code range dominated the step.
  const auto& b = s.shard_balance;
  if (b.shards > 0) {
    err << "  step2 shards: " << b.shards << ", wall min/median/max "
        << std::fixed << std::setprecision(4) << b.min_seconds << "/"
        << b.median_seconds << "/" << b.max_seconds << " s ("
        << std::setprecision(2) << b.total_seconds
        << " s CPU total)\n"
        << std::defaultfloat << std::setprecision(6);
  }
  // Per-group spreads for the other stages (one sample per strand/slice
  // group): a straggling group shows up here without a profiler.
  const auto print_group_balance = [&err](const char* label,
                                          const core::exec::ShardBalance& g) {
    if (g.shards == 0) return;
    err << "  " << label << " groups: " << g.shards
        << ", wall min/median/max " << std::fixed << std::setprecision(4)
        << g.min_seconds << "/" << g.median_seconds << "/" << g.max_seconds
        << " s\n"
        << std::defaultfloat << std::setprecision(6);
  };
  print_group_balance("index", s.index_group_balance);
  print_group_balance("gapped", s.gapped_group_balance);
}

/// Open config.out_path (or fall back to `out`) before the potentially
/// long pipeline run so an unwritable path fails fast.
bool open_sink(const CliConfig& config, std::ostream& out,
               std::ofstream& out_file, std::ostream*& sink,
               std::ostream& err) {
  sink = &out;
  if (!config.out_path.empty()) {
    out_file.open(config.out_path);
    if (!out_file) {
      err << "error: cannot create " << config.out_path << '\n';
      return false;
    }
    sink = &out_file;
  }
  return true;
}

bool flush_sink(const CliConfig& config, std::ostream& sink,
                std::ostream& err) {
  sink.flush();
  if (!sink) {
    err << "error: writing m8 output"
        << (config.out_path.empty() ? "" : " to " + config.out_path)
        << " failed\n";
    return false;
  }
  return true;
}

/// Report the per-query streaming summary + stats (shared by the flat
/// and search drivers).
void print_outcome_stats(std::ostream& err, const CliConfig& config,
                         const SearchOutcome& outcome) {
  if (config.memory_budget_mb > 0) {
    err << "scoris: streamed bank2 in " << outcome.slices
        << " slice(s) under a " << config.memory_budget_mb
        << " MB index budget\n";
  }
  print_stats(err, outcome.stats, outcome.stats.alignments);
}

/// Streaming writes m8 lines before the run completes, so a mid-run
/// pipeline failure would otherwise leave a truncated (but well-formed)
/// --out file behind.  Restore the old all-or-nothing file contract by
/// truncating it; stdout streaming is inherently incremental and is
/// covered by the exit code.
void discard_partial_output(const CliConfig& config,
                            std::ofstream& out_file) {
  if (config.out_path.empty()) return;
  out_file.close();
  std::ofstream(config.out_path, std::ios::trunc);
}

/// Split `--workers host:port,unix:/path,...` into parsed endpoints.
bool parse_worker_list(const std::string& spec,
                       std::vector<net::Endpoint>& workers,
                       std::ostream& err) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) {
      try {
        workers.push_back(net::parse_endpoint(item));
      } catch (const net::NetError& e) {
        err << "error: --workers: " << e.what() << '\n';
        return false;
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (workers.empty()) {
    err << "error: --workers expects host:port[,host:port...]\n";
    return false;
  }
  return true;
}

/// One search through the distributed coordinator (--workers given):
/// byte-identical m8, plan groups fanned out over the worker endpoints
/// plus this process.  `index_path` non-empty ships the reference as a
/// .scix path (the `search` form); otherwise the bank is inlined.
SearchOutcome search_distributed(const Session& session,
                                 const seqio::SequenceBank& bank2,
                                 HitSink& sink, const SearchLimits& limits,
                                 const CliConfig& config,
                                 const std::string& index_path,
                                 std::vector<net::Endpoint> workers,
                                 std::ostream& err) {
  dist::DistConfig dcfg;
  dcfg.workers = std::move(workers);
  dcfg.connect_timeout_ms = config.worker_timeout_ms;
  dcfg.recv_timeout_ms = config.worker_timeout_ms;
  dcfg.dist_slices = config.dist_slices;
  dcfg.index_path = index_path;
  // Worker lifecycle events (connects, retries, abandoned workers) are
  // operational news the user should see; warn keeps the happy path
  // quiet.
  obs::Logger logger(err, obs::LogLevel::kWarn);
  dcfg.logger = &logger;
  return dist::run_distributed(session, bank2, sink, limits, dcfg);
}

int run_compare(const CliConfig& config, std::ostream& out,
                std::ostream& err) {
  seqio::SequenceBank bank1;
  seqio::SequenceBank bank2;
  try {
    bank1 = load_bank(config.bank1_path);
    bank2 = load_bank(config.bank2_path);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  std::ofstream out_file;
  std::ostream* sink = nullptr;
  if (!open_sink(config, out, out_file, sink, err)) return kRuntimeError;

  try {
    // One-shot session: the reference is indexed once and m8 lines
    // stream to the sink as they become final instead of accumulating.
    Session session(std::move(bank1), config.options);
    M8Writer writer(*sink);
    obs::TraceRecorder trace;
    SearchLimits limits;
    limits.memory_budget_bytes =
        static_cast<std::size_t>(config.memory_budget_mb) << 20;
    if (!config.trace_json_path.empty()) limits.trace = &trace;
    SearchOutcome outcome;
    if (!config.workers.empty()) {
      std::vector<net::Endpoint> workers;
      if (!parse_worker_list(config.workers, workers, err)) return kUsage;
      outcome = search_distributed(session, bank2, writer, limits, config,
                                   /*index_path=*/"", std::move(workers),
                                   err);
    } else {
      outcome = session.search(bank2, writer, limits);
    }
    if (!flush_sink(config, *sink, err)) return kRuntimeError;
    if (!config.trace_json_path.empty()) {
      trace.write_chrome_json(config.trace_json_path);
    }
    if (config.stats) print_outcome_stats(err, config, outcome);
  } catch (const SinkError& e) {
    // Output delivery failed (disk full, downstream pipe closed): the
    // pipeline itself was fine, so say what actually went wrong instead
    // of the generic pipeline diagnostic — and still exit 1, never 0
    // with truncated output.
    discard_partial_output(config, out_file);
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  } catch (const std::exception& e) {
    discard_partial_output(config, out_file);
    err << "error: pipeline failed: " << e.what() << '\n';
    return kRuntimeError;
  }
  return kOk;
}

int run_search(const CliConfig& config, std::ostream& out,
               std::ostream& err) {
  // Session's store constructor enforces that a payload matches this
  // search's effective settings; anything else silently changes the seed
  // set, so it throws with a diagnostic listing the available payloads.
  std::optional<Session> session;
  seqio::SequenceBank bank2;
  try {
    session.emplace(store::load_index(config.index_path), config.options);
    bank2 = load_bank(config.bank2_path);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  std::ofstream out_file;
  std::ostream* sink = nullptr;
  if (!open_sink(config, out, out_file, sink, err)) return kRuntimeError;

  try {
    M8Writer writer(*sink);
    obs::TraceRecorder trace;
    SearchLimits limits;
    limits.memory_budget_bytes =
        static_cast<std::size_t>(config.memory_budget_mb) << 20;
    if (!config.trace_json_path.empty()) limits.trace = &trace;
    SearchOutcome outcome;
    if (!config.workers.empty()) {
      std::vector<net::Endpoint> workers;
      if (!parse_worker_list(config.workers, workers, err)) return kUsage;
      // Workers that share a filesystem load the .scix themselves; the
      // coordinator only inlines bank bytes on the flat compare form.
      outcome = search_distributed(*session, bank2, writer, limits, config,
                                   config.index_path, std::move(workers),
                                   err);
    } else {
      outcome = session->search(bank2, writer, limits);
    }
    if (!flush_sink(config, *sink, err)) return kRuntimeError;
    if (!config.trace_json_path.empty()) {
      trace.write_chrome_json(config.trace_json_path);
    }
    if (config.stats) print_outcome_stats(err, config, outcome);
  } catch (const SinkError& e) {
    discard_partial_output(config, out_file);
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  } catch (const std::exception& e) {
    discard_partial_output(config, out_file);
    err << "error: pipeline failed: " << e.what() << '\n';
    return kRuntimeError;
  }
  return kOk;
}

int run_index(const IndexCliConfig& config, std::ostream& err) {
  seqio::SequenceBank bank;
  try {
    bank = load_bank(config.bank_path);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  store::IndexKey key;
  key.w = config.w;
  key.dust = config.dust;
  try {
    store::write_index_file(config.out_path, bank, {&key, 1});
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  if (config.stats) {
    const seqio::BankStats bs = bank.stats();
    err << "scoris index: " << bank.size() << " sequences, " << std::fixed
        << std::setprecision(2) << bs.mbp() << std::defaultfloat
        << " Mbp -> " << config.out_path << " (" << store::to_string(key)
        << ")\n";
  }
  return kOk;
}

/// The serving daemon, reachable from the SIGINT/SIGTERM handlers.
/// Server::request_stop is async-signal-safe (atomic store + write(2)),
/// so the handler body is too.
std::atomic<daemon::Server*> g_serving{nullptr};
/// Likewise for `scoris worker` — Worker::request_stop shares the same
/// atomic-plus-wake-pipe contract.  One process runs at most one of the
/// two daemons, so a single handler checking both atomics suffices.
std::atomic<dist::Worker*> g_worker{nullptr};

extern "C" void serve_signal_handler(int /*signo*/) {
  if (daemon::Server* server = g_serving.load(std::memory_order_acquire)) {
    server->request_stop();
  }
  if (dist::Worker* worker = g_worker.load(std::memory_order_acquire)) {
    worker->request_stop();
  }
}

/// Scoped SIGINT/SIGTERM -> request_stop installation around serve().
class ServeSignalScope {
 public:
  explicit ServeSignalScope(daemon::Server& server) {
    g_serving.store(&server, std::memory_order_release);
    struct sigaction action {};
    action.sa_handler = &serve_signal_handler;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ServeSignalScope() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
    g_serving.store(nullptr, std::memory_order_release);
  }
  ServeSignalScope(const ServeSignalScope&) = delete;
  ServeSignalScope& operator=(const ServeSignalScope&) = delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

/// The worker-side twin of ServeSignalScope.
class WorkerSignalScope {
 public:
  explicit WorkerSignalScope(dist::Worker& worker) {
    g_worker.store(&worker, std::memory_order_release);
    struct sigaction action {};
    action.sa_handler = &serve_signal_handler;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~WorkerSignalScope() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
    g_worker.store(nullptr, std::memory_order_release);
  }
  WorkerSignalScope(const WorkerSignalScope&) = delete;
  WorkerSignalScope& operator=(const WorkerSignalScope&) = delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

int run_serve(const ServeCliConfig& config, std::ostream& err) {
  // All daemon output goes through the structured logger: RFC3339
  // timestamps, levels, and key=value fields (connection ids come from
  // the server).  --log-file redirects it; diagnostics the *CLI* emits
  // before the daemon exists stay plain "error:" lines on err.
  const obs::LogLevel level = obs::parse_log_level(config.log_level)
                                  .value_or(obs::LogLevel::kInfo);
  std::optional<obs::Logger> logger;
  try {
    if (!config.log_file.empty()) {
      logger.emplace(config.log_file, level);
    } else {
      logger.emplace(err, level);
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  std::optional<Session> session;
  try {
    session.emplace(
        Session::open(config.search.index_path, config.search.options));
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  daemon::ServerConfig server_config;
  server_config.endpoint = config.endpoint;
  server_config.backlog = config.backlog;
  server_config.max_clients = config.max_clients;
  server_config.base_limits.memory_budget_bytes =
      static_cast<std::size_t>(config.search.memory_budget_mb) << 20;
  server_config.logger = &*logger;

  try {
    daemon::Server server(*session, server_config);
    server.bind();
    // The ready line CI and tests wait for — logged (and flushed by the
    // logger) before the loop blocks, carrying the resolved endpoint
    // (real port for TCP port-0 binds).
    logger->info("scoris serve: listening on " +
                     net::to_string(server.endpoint()),
                 {obs::kv("max_clients",
                          static_cast<unsigned long long>(
                              config.max_clients)),
                  obs::kv("threads", config.search.threads)});
    {
      ServeSignalScope signals(server);
      server.serve();
    }
    const daemon::ServerCounters counters = server.counters();
    logger->info("scoris serve: shut down after " +
                     std::to_string(counters.served) + " queries",
                 {obs::kv("connections", counters.accepted),
                  obs::kv("refused", counters.rejected),
                  obs::kv("failed", counters.failed)});
  } catch (const std::exception& e) {
    logger->error(e.what());
    return kRuntimeError;
  }
  return kOk;
}

int run_query(const QueryCliConfig& config, std::ostream& out,
              std::ostream& err) {
  // Re-serialize through the bank loader so .scob inputs work and a
  // malformed FASTA fails here, with a local diagnostic, rather than as
  // a server-side ERR.
  std::string fasta;
  try {
    const seqio::SequenceBank bank2 = load_bank(config.bank2_path);
    std::ostringstream text;
    seqio::write_fasta(text, bank2);
    fasta = text.str();
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  net::QueryStrand strand = net::QueryStrand::kDefault;
  if (config.strand == "plus") strand = net::QueryStrand::kPlus;
  else if (config.strand == "minus") strand = net::QueryStrand::kMinus;
  else if (config.strand == "both") strand = net::QueryStrand::kBoth;

  std::ofstream out_file;
  std::ostream* sink = &out;
  if (!config.out_path.empty()) {
    out_file.open(config.out_path);
    if (!out_file) {
      err << "error: cannot create " << config.out_path << '\n';
      return kRuntimeError;
    }
    sink = &out_file;
  }

  try {
    // A saturated daemon refuses with BUSY instead of queueing; --retry
    // turns that refusal into capped-backoff redials (the same
    // net::RetryPolicy the distributed coordinator re-dials workers
    // with) rather than an immediate exit 1.
    const net::RetryPolicy policy{config.retry, config.retry_backoff_ms,
                                  5000};
    std::optional<net::QueryClient> client;
    for (int attempt = 0; !client; ++attempt) {
      try {
        client.emplace(net::QueryClient::connect(config.endpoint));
      } catch (const net::ServerBusy&) {
        if (attempt >= policy.retries) throw;
        const int delay = policy.delay_ms(attempt);
        err << "scoris query: server busy, retrying in " << delay
            << " ms (attempt " << (attempt + 1) << "/" << policy.retries
            << ")\n";
        net::sleep_ms(delay);
      }
    }
    if (fasta.size() > client->max_query_bytes()) {
      err << "error: query is " << fasta.size()
          << " bytes; the server accepts at most "
          << client->max_query_bytes() << '\n';
      return kRuntimeError;
    }
    const net::QueryResult result =
        client->query(fasta, strand, [&](std::string_view rows) {
          sink->write(rows.data(),
                      static_cast<std::streamsize>(rows.size()));
          if (!*sink) {
            throw SinkError("m8 output stream failed (disk full?)");
          }
        });
    if (!result.ok) {
      err << "error: server: " << result.error << '\n';
      return kRuntimeError;
    }
    sink->flush();
    if (!*sink) {
      err << "error: writing m8 output"
          << (config.out_path.empty() ? "" : " to " + config.out_path)
          << " failed\n";
      return kRuntimeError;
    }
    if (config.stats) {
      err << "scoris query: " << result.alignments << " alignments, "
          << result.row_bytes << " m8 bytes";
      if (result.server_seconds >= 0) {
        // v2 servers report their own wall time in DONE, so the client
        // can separate server compute from transfer/parse overhead.
        const std::streamsize precision = err.precision();
        err << ", server " << std::fixed << std::setprecision(3)
            << result.server_seconds << " s";
        err << std::defaultfloat << std::setprecision(precision);
      }
      err << '\n';
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }
  return kOk;
}

int run_worker(const WorkerCliConfig& config, std::ostream& err) {
  // Same logging discipline as serve: structured logger for everything
  // the daemon says, plain "error:" lines only before it exists.
  const obs::LogLevel level = obs::parse_log_level(config.log_level)
                                  .value_or(obs::LogLevel::kInfo);
  std::optional<obs::Logger> logger;
  try {
    if (!config.log_file.empty()) {
      logger.emplace(config.log_file, level);
    } else {
      logger.emplace(err, level);
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }

  dist::WorkerConfig worker_config;
  worker_config.endpoint = config.endpoint;
  worker_config.backlog = config.backlog;
  worker_config.threads = config.threads;
  worker_config.max_jobs = config.max_jobs;
  worker_config.logger = &*logger;

  try {
    dist::Worker worker(worker_config);
    worker.bind();
    // The ready line coordinators, CI, and tests wait for — flushed
    // before the accept loop blocks, with the resolved endpoint.
    logger->info("scoris worker: listening on " +
                     net::to_string(worker.endpoint()),
                 {obs::kv("max_jobs", static_cast<unsigned long long>(
                                          config.max_jobs)),
                  obs::kv("threads", config.threads)});
    {
      WorkerSignalScope signals(worker);
      worker.serve();
    }
    const dist::WorkerCounters counters = worker.counters();
    logger->info("scoris worker: shut down after " +
                     std::to_string(counters.groups) + " groups",
                 {obs::kv("connections", counters.accepted),
                  obs::kv("jobs", counters.jobs),
                  obs::kv("failed", counters.failed)});
  } catch (const std::exception& e) {
    logger->error(e.what());
    return kRuntimeError;
  }
  return kOk;
}

int run_stats(const StatsCliConfig& config, std::ostream& out,
              std::ostream& err) {
  try {
    net::QueryClient client = net::QueryClient::connect(config.endpoint);
    out << client.stats();
    out.flush();
    if (!out) {
      err << "error: writing metrics output failed\n";
      return kRuntimeError;
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kRuntimeError;
  }
  return kOk;
}

}  // namespace

void print_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program
     << " --bank1 <a.fa> --bank2 <b.fa> [options]\n"
     << "       " << program << " <a.fa> <b.fa> [options]\n"
     << "       " << program << " index --bank <ref.fa> --out <ref.scix>\n"
     << "       " << program
     << " search --index <ref.scix> --bank2 <b.fa> [options]\n"
     << "       " << program << " serve --index <ref.scix> --listen <addr>\n"
     << "       " << program << " query --connect <addr> --bank2 <b.fa>\n"
     << "       " << program << " stats --connect <addr>\n"
     << "       " << program << " worker --listen <addr>\n"
     << "\n"
     << "Compare two DNA banks with the ORIS pipeline and write BLAST -m 8\n"
     << "tabular output. Banks are FASTA files (or binary .scob banks);\n"
     << "`index`/`search` prebuild and reuse a .scix bank+index artifact\n"
     << "(see `" << program << " index --help`).\n"
     << "\n"
     << "options:\n"
     << "  --bank1 FILE    query-side bank (m8 qseqid column)\n"
     << "  --bank2 FILE    subject-side bank (m8 sseqid column)\n"
     << "  --out FILE      write m8 output to FILE (default: stdout)\n"
     << "  --w N           seed length, 4..14 (default 11)\n"
     << "  --threads N     worker threads for steps 2-3 (default 1)\n"
     << "  --shards N      step-2 seed-code shards per strand/slice group\n"
     << "                  (default 0 = auto; output-invariant)\n"
     << "  --schedule S    shard scheduler: stealing (default) or static\n"
     << "  --strand S      plus (default, paper's -S 1), minus, or both\n"
     << "  --evalue E      e-value cutoff (default 1e-3)\n"
     << "  --dust BOOL     low-complexity filter (default true)\n"
     << "  --no-dust       shorthand for --dust false\n"
     << "  --asymmetric    10-nt words, stride-2 index on bank2\n"
     << "  --s1 SCORE      minimum HSP raw score (default 25)\n"
     << "  --memory-budget-mb N   stream bank2 in slices under N MB of\n"
     << "                  index memory (default: no slicing)\n"
     << "  --delivery-budget-kb N   bound the multi-group merge's output\n"
     << "                  buffering to N KB; sorted group runs spill to\n"
     << "                  temp files over it (default: unbounded)\n"
     << "  --tmp-dir DIR   directory for spill-run temp files (default:\n"
     << "                  the system temp directory)\n"
     << "  --trace-json FILE   write per-stage spans (index/scan/gapped/\n"
     << "                  merge) as Chrome trace_event JSON to FILE\n"
     << "  --workers LIST  comma-separated `" << program
     << " worker` endpoints\n"
     << "                  (host:port or unix:/path); distribute plan\n"
     << "                  groups over them, byte-identical output\n"
     << "  --worker-timeout-ms N   per-worker connect deadline and recv\n"
     << "                  silence bound (default 30000)\n"
     << "  --dist-slices N minimum bank2 slices when distributing\n"
     << "                  (default 0 = auto; output-invariant)\n"
     << "  --force-scalar  pin step 2 to the scalar match-run kernel\n"
     << "                  instead of the best SIMD one (output-invariant;\n"
     << "                  for A/B timing)\n"
     << "  --stats         print per-step statistics to stderr\n"
     << "  --kernel        print the match-run kernel this machine\n"
     << "                  dispatches to (scalar/sse4.1/avx2) and exit\n"
     << "  --help          show this message and exit\n"
     << "  --version       show version and exit\n";
}

void print_index_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program
     << " index --bank <ref.fa> --out <ref.scix> [options]\n"
     << "\n"
     << "Build a persistent .scix artifact: the bank (2-bit packed) plus a\n"
     << "precomputed seed index, loadable by `" << program
     << " search` without\n"
     << "re-parsing FASTA or re-scanning a single sequence.\n"
     << "\n"
     << "options:\n"
     << "  --bank FILE     bank to index (FASTA or .scob; also positional)\n"
     << "  --out FILE      artifact path to create (required)\n"
     << "  --w N           seed length, 4..13 (default 11; use 10 for\n"
     << "                  searches that will run --asymmetric)\n"
     << "  --dust BOOL     DUST-mask before indexing (default true); the\n"
     << "                  search must use the same setting\n"
     << "  --no-dust       shorthand for --dust false\n"
     << "  --stats         print a build summary to stderr\n"
     << "  --help          show this message and exit\n";
}

void print_search_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program
     << " search --index <ref.scix> --bank2 <b.fa> [options]\n"
     << "\n"
     << "Compare a prebuilt .scix artifact (the bank1/query side) against a\n"
     << "FASTA/.scob bank. Output is byte-identical to the flat invocation\n"
     << "on the artifact's source FASTA when the settings match.\n"
     << "\n"
     << "options:\n"
     << "  --index FILE    .scix artifact built by `" << program
     << " index`\n"
     << "  --bank2 FILE    subject-side bank (m8 sseqid column)\n"
     << "  --out FILE      write m8 output to FILE (default: stdout)\n"
     << "  --w N           seed length; must match the artifact (default 11)\n"
     << "  --threads N     worker threads for steps 2-3 (default 1)\n"
     << "  --shards N      step-2 seed-code shards per strand/slice group\n"
     << "                  (default 0 = auto; output-invariant)\n"
     << "  --schedule S    shard scheduler: stealing (default) or static\n"
     << "  --strand S      plus (default), minus, or both\n"
     << "  --evalue E      e-value cutoff (default 1e-3)\n"
     << "  --dust BOOL / --no-dust   must match the artifact (default true)\n"
     << "  --asymmetric    10-nt words, stride-2 index on bank2 (artifact\n"
     << "                  must hold a w=10 payload)\n"
     << "  --s1 SCORE      minimum HSP raw score (default 25)\n"
     << "  --memory-budget-mb N   stream bank2 in slices under N MB of\n"
     << "                  index memory (default: no slicing)\n"
     << "  --delivery-budget-kb N   bound the multi-group merge's output\n"
     << "                  buffering to N KB; sorted group runs spill to\n"
     << "                  temp files over it (default: unbounded)\n"
     << "  --tmp-dir DIR   directory for spill-run temp files (default:\n"
     << "                  the system temp directory)\n"
     << "  --trace-json FILE   write per-stage spans (index/scan/gapped/\n"
     << "                  merge) as Chrome trace_event JSON to FILE\n"
     << "  --workers LIST  comma-separated `" << program
     << " worker` endpoints;\n"
     << "                  workers load the .scix from their own\n"
     << "                  filesystem (shared path required)\n"
     << "  --worker-timeout-ms N   per-worker connect deadline and recv\n"
     << "                  silence bound (default 30000)\n"
     << "  --dist-slices N minimum bank2 slices when distributing\n"
     << "                  (default 0 = auto; output-invariant)\n"
     << "  --force-scalar  pin step 2 to the scalar match-run kernel\n"
     << "                  instead of the best SIMD one (output-invariant;\n"
     << "                  for A/B timing)\n"
     << "  --stats         print per-step statistics to stderr\n"
     << "  --help          show this message and exit\n";
}

void print_serve_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program
     << " serve --index <ref.scix> --listen <addr> [options]\n"
     << "\n"
     << "Run the scorisd daemon: prepare the reference once, then answer\n"
     << "FASTA queries from concurrent network clients over one shared\n"
     << "immutable session (see docs/API.md for the wire protocol).\n"
     << "Prints `listening on <addr>` to stderr when ready; SIGINT or\n"
     << "SIGTERM drains in-flight queries and exits 0.\n"
     << "\n"
     << "options:\n"
     << "  --index FILE    reference: .scix artifact, .scob bank, or FASTA\n"
     << "  --listen ADDR   host:port (port 0 = ephemeral, real port in the\n"
     << "                  ready line) or unix:/path/to.sock\n"
     << "  --max-clients N concurrent admitted connections (default 4);\n"
     << "                  excess connections get a BUSY frame\n"
     << "  --backlog N     kernel accept-queue bound (default 16)\n"
     << "  --threads N     worker threads shared by all queries (default 1)\n"
     << "  --w / --strand / --evalue / --dust / --no-dust / --asymmetric /\n"
     << "  --s1 / --shards / --schedule   session options, as in `"
     << program << " search`\n"
     << "  --memory-budget-mb N / --delivery-budget-kb N / --tmp-dir DIR\n"
     << "                  per-query memory discipline, as in `" << program
     << " search`\n"
     << "  --log-level L   error, warn, info (default), or debug\n"
     << "  --log-file FILE append structured logs to FILE (default: the\n"
     << "                  error stream)\n"
     << "  --help          show this message and exit\n";
}

void print_query_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program
     << " query --connect <addr> --bank2 <b.fa> [options]\n"
     << "\n"
     << "Send one bank to a running `" << program
     << " serve` daemon and stream the\n"
     << "m8 result to stdout (or --out). Exits 1 if the server is busy,\n"
     << "unreachable, or reports a query error.\n"
     << "\n"
     << "options:\n"
     << "  --connect ADDR  host:port or unix:/path, as given to --listen\n"
     << "  --bank2 FILE    subject-side bank (FASTA or .scob)\n"
     << "  --out FILE      write m8 output to FILE (default: stdout)\n"
     << "  --strand S      plus, minus, or both (default: the server's)\n"
     << "  --stats         print the result summary to stderr (includes\n"
     << "                  the server-side query seconds on v2 servers)\n"
     << "  --retry N       retry a BUSY refusal up to N times with capped\n"
     << "                  exponential backoff (default 0 = fail fast)\n"
     << "  --retry-backoff-ms M   delay before the first retry (default\n"
     << "                  100; doubles per attempt, capped at 5000)\n"
     << "  --help          show this message and exit\n";
}

void print_stats_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program << " stats --connect <addr>\n"
     << "\n"
     << "Fetch a live metrics snapshot from a running `" << program
     << " serve`\n"
     << "daemon and print it to stdout in Prometheus text exposition\n"
     << "format (see docs/OBSERVABILITY.md for the metric inventory).\n"
     << "Requires a protocol-v2 server. Exits 1 if the server is busy,\n"
     << "unreachable, or too old to answer STAT frames.\n"
     << "\n"
     << "options:\n"
     << "  --connect ADDR  host:port or unix:/path, as given to --listen\n"
     << "  --help          show this message and exit\n";
}

void print_worker_usage(std::ostream& os, const std::string& program) {
  os << "usage: " << program << " worker --listen <addr> [options]\n"
     << "\n"
     << "Run a distributed shard worker: wait for a coordinator (`"
     << program << "`\n"
     << "with --workers), receive the reference + query bank + options,\n"
     << "execute assigned plan groups through the local engine, and stream\n"
     << "each sorted run back over the connection (docs/API.md, worker\n"
     << "protocol v1). Prints `listening on <addr>` when ready; SIGINT or\n"
     << "SIGTERM drains in-flight groups and exits 0.\n"
     << "\n"
     << "options:\n"
     << "  --listen ADDR   host:port (port 0 = ephemeral, real port in the\n"
     << "                  ready line) or unix:/path/to.sock\n"
     << "  --threads N     engine threads per job (default 1);\n"
     << "                  output-invariant, chosen by the worker\n"
     << "  --max-jobs N    concurrent coordinator connections (default 2);\n"
     << "                  excess connections are refused\n"
     << "  --backlog N     kernel accept-queue bound (default 16)\n"
     << "  --log-level L   error, warn, info (default), or debug\n"
     << "  --log-file FILE append structured logs to FILE (default: the\n"
     << "                  error stream)\n"
     << "  --help          show this message and exit\n";
}

bool parse_cli(int argc, const char* const* argv, CliConfig& config,
               std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_flags(), err)) return false;

  for (const char* name : {"stats", "asymmetric", "dust", "no-dust",
                           "force-scalar", "kernel", "help", "version"}) {
    if (!check_boolean_flag(args, name, err)) return false;
  }

  config.help = args.get_flag("help");
  config.version = args.get_flag("version");
  config.kernel_probe = args.get_flag("kernel");
  if (config.help || config.version || config.kernel_probe) return true;

  config.bank1_path = args.get("bank1");
  config.bank2_path = args.get("bank2");
  const auto& positional = args.positional();
  if (!positional.empty()) {
    if (!config.bank1_path.empty() || !config.bank2_path.empty()) {
      err << "error: unexpected positional argument '" << positional[0]
          << "' (banks already given via --bank1/--bank2)\n";
      return false;
    }
    if (positional.size() != 2) {
      err << "error: expected exactly two positional banks, got "
          << positional.size() << '\n';
      return false;
    }
    config.bank1_path = positional[0];
    config.bank2_path = positional[1];
  }
  if (config.bank1_path.empty() || config.bank2_path.empty()) {
    err << "error: both --bank1 and --bank2 are required\n";
    return false;
  }

  return parse_search_options(args, config, err);
}

bool parse_search_cli(int argc, const char* const* argv, CliConfig& config,
                      std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_search_flags(), err)) return false;
  for (const char* name : {"stats", "asymmetric", "dust", "no-dust",
                           "force-scalar", "help"}) {
    if (!check_boolean_flag(args, name, err)) return false;
  }

  config.help = args.get_flag("help");
  if (config.help) return true;

  if (!args.positional().empty()) {
    err << "error: search takes no positional arguments, got '"
        << args.positional()[0] << "'\n";
    return false;
  }
  config.index_path = args.get("index");
  config.bank2_path = args.get("bank2");
  if (config.index_path.empty() || config.bank2_path.empty()) {
    err << "error: both --index and --bank2 are required\n";
    return false;
  }
  if (!parse_search_options(args, config, err)) return false;
  // Artifacts cap W at 13 (int32 chains); the flat form's W=14 can never
  // match a payload, so reject it here as the usage error it is —
  // except under --asymmetric, where the effective word length is 10.
  if (config.w > 13 && !config.asymmetric) {
    err << "error: --w must be <= 13 for search (.scix artifacts cap W at "
           "13)\n";
    return false;
  }
  return true;
}

bool parse_index_cli(int argc, const char* const* argv,
                     IndexCliConfig& config, std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_index_flags(), err)) return false;
  for (const char* name : {"stats", "dust", "no-dust", "help"}) {
    if (!check_boolean_flag(args, name, err)) return false;
  }

  config.help = args.get_flag("help");
  if (config.help) return true;

  config.bank_path = args.get("bank");
  const auto& positional = args.positional();
  if (!positional.empty()) {
    if (!config.bank_path.empty() || positional.size() != 1) {
      err << "error: expected exactly one bank (--bank FILE or one "
             "positional)\n";
      return false;
    }
    config.bank_path = positional[0];
  }
  if (config.bank_path.empty()) {
    err << "error: --bank is required\n";
    return false;
  }
  config.out_path = args.get("out");
  if (config.out_path.empty()) {
    err << "error: --out is required\n";
    return false;
  }
  if (!parse_int_flag(args, "w", 4, 13, config.w, err)) return false;
  config.dust = args.get_flag("dust", true);
  if (args.get_flag("no-dust")) config.dust = false;
  config.stats = args.get_flag("stats");
  return true;
}

bool parse_serve_cli(int argc, const char* const* argv,
                     ServeCliConfig& config, std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_serve_flags(), err)) return false;
  for (const char* name : {"asymmetric", "dust", "no-dust", "help"}) {
    if (!check_boolean_flag(args, name, err)) return false;
  }

  config.help = args.get_flag("help");
  if (config.help) return true;

  if (!args.positional().empty()) {
    err << "error: serve takes no positional arguments, got '"
        << args.positional()[0] << "'\n";
    return false;
  }
  config.search.index_path = args.get("index");
  const std::string listen = args.get("listen");
  if (config.search.index_path.empty() || listen.empty()) {
    err << "error: both --index and --listen are required\n";
    return false;
  }
  try {
    config.endpoint = net::parse_endpoint(listen);
  } catch (const net::NetError& e) {
    err << "error: " << e.what() << '\n';
    return false;
  }
  std::size_t max_clients = config.max_clients;
  if (!parse_size_flag(args, "max-clients", 1, 1 << 10, max_clients, err)) {
    return false;
  }
  config.max_clients = max_clients;
  if (!parse_int_flag(args, "backlog", 1, 1 << 12, config.backlog, err)) {
    return false;
  }
  const std::string log_level = args.get("log-level");
  if (!log_level.empty()) {
    if (!obs::parse_log_level(log_level)) {
      err << "error: --log-level must be error, warn, info, or debug (got '"
          << log_level << "')\n";
      return false;
    }
    config.log_level = log_level;
  }
  config.log_file = args.get("log-file");
  return parse_search_options(args, config.search, err);
}

bool parse_query_cli(int argc, const char* const* argv,
                     QueryCliConfig& config, std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_query_flags(), err)) return false;
  for (const char* name : {"stats", "help"}) {
    if (!check_boolean_flag(args, name, err)) return false;
  }

  config.help = args.get_flag("help");
  if (config.help) return true;

  if (!args.positional().empty()) {
    err << "error: query takes no positional arguments, got '"
        << args.positional()[0] << "'\n";
    return false;
  }
  const std::string connect = args.get("connect");
  config.bank2_path = args.get("bank2");
  if (connect.empty() || config.bank2_path.empty()) {
    err << "error: both --connect and --bank2 are required\n";
    return false;
  }
  try {
    config.endpoint = net::parse_endpoint(connect);
  } catch (const net::NetError& e) {
    err << "error: " << e.what() << '\n';
    return false;
  }
  config.out_path = args.get("out");
  config.strand = args.get("strand");
  if (!config.strand.empty() && config.strand != "plus" &&
      config.strand != "minus" && config.strand != "both") {
    err << "error: --strand must be plus, minus, or both (got '"
        << config.strand << "')\n";
    return false;
  }
  config.stats = args.get_flag("stats");
  if (!parse_int_flag(args, "retry", 0, 1000, config.retry, err)) {
    return false;
  }
  if (!parse_int_flag(args, "retry-backoff-ms", 1, 1 << 20,
                      config.retry_backoff_ms, err)) {
    return false;
  }
  return true;
}

bool parse_worker_cli(int argc, const char* const* argv,
                      WorkerCliConfig& config, std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_worker_flags(), err)) return false;
  if (!check_boolean_flag(args, "help", err)) return false;

  config.help = args.get_flag("help");
  if (config.help) return true;

  if (!args.positional().empty()) {
    err << "error: worker takes no positional arguments, got '"
        << args.positional()[0] << "'\n";
    return false;
  }
  const std::string listen = args.get("listen");
  if (listen.empty()) {
    err << "error: --listen is required\n";
    return false;
  }
  try {
    config.endpoint = net::parse_endpoint(listen);
  } catch (const net::NetError& e) {
    err << "error: " << e.what() << '\n';
    return false;
  }
  if (!parse_int_flag(args, "threads", 1, 1 << 10, config.threads, err)) {
    return false;
  }
  if (!parse_int_flag(args, "backlog", 1, 1 << 12, config.backlog, err)) {
    return false;
  }
  std::size_t max_jobs = config.max_jobs;
  if (!parse_size_flag(args, "max-jobs", 1, 1 << 10, max_jobs, err)) {
    return false;
  }
  config.max_jobs = max_jobs;
  const std::string log_level = args.get("log-level");
  if (!log_level.empty()) {
    if (!obs::parse_log_level(log_level)) {
      err << "error: --log-level must be error, warn, info, or debug (got '"
          << log_level << "')\n";
      return false;
    }
    config.log_level = log_level;
  }
  config.log_file = args.get("log-file");
  return true;
}

bool parse_stats_cli(int argc, const char* const* argv,
                     StatsCliConfig& config, std::ostream& err) {
  const util::Args args = util::Args::parse(argc, argv);

  if (!reject_unknown_flags(args, known_stats_flags(), err)) return false;
  if (!check_boolean_flag(args, "help", err)) return false;

  config.help = args.get_flag("help");
  if (config.help) return true;

  if (!args.positional().empty()) {
    err << "error: stats takes no positional arguments, got '"
        << args.positional()[0] << "'\n";
    return false;
  }
  const std::string connect = args.get("connect");
  if (connect.empty()) {
    err << "error: --connect is required\n";
    return false;
  }
  try {
    config.endpoint = net::parse_endpoint(connect);
  } catch (const net::NetError& e) {
    err << "error: " << e.what() << '\n';
    return false;
  }
  return true;
}

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  // Every entry form may write to a pipe the reader has closed (stdout
  // into `head`, a query client that died); fail those writes with
  // EPIPE -> SinkError -> exit 1 instead of dying on SIGPIPE.
  net::ignore_sigpipe();
  const std::string program = argc > 0 ? argv[0] : "scoris";
  const std::string subcommand = argc > 1 ? argv[1] : "";

  if (subcommand == "index") {
    IndexCliConfig config;
    if (!parse_index_cli(argc - 1, argv + 1, config, err)) {
      print_index_usage(err, program);
      return kUsage;
    }
    if (config.help) {
      print_index_usage(out, program);
      return kOk;
    }
    return run_index(config, err);
  }

  if (subcommand == "search") {
    CliConfig config;
    if (!parse_search_cli(argc - 1, argv + 1, config, err)) {
      print_search_usage(err, program);
      return kUsage;
    }
    if (config.help) {
      print_search_usage(out, program);
      return kOk;
    }
    return run_search(config, out, err);
  }

  if (subcommand == "serve") {
    ServeCliConfig config;
    if (!parse_serve_cli(argc - 1, argv + 1, config, err)) {
      print_serve_usage(err, program);
      return kUsage;
    }
    if (config.help) {
      print_serve_usage(out, program);
      return kOk;
    }
    return run_serve(config, err);
  }

  if (subcommand == "query") {
    QueryCliConfig config;
    if (!parse_query_cli(argc - 1, argv + 1, config, err)) {
      print_query_usage(err, program);
      return kUsage;
    }
    if (config.help) {
      print_query_usage(out, program);
      return kOk;
    }
    return run_query(config, out, err);
  }

  if (subcommand == "worker") {
    WorkerCliConfig config;
    if (!parse_worker_cli(argc - 1, argv + 1, config, err)) {
      print_worker_usage(err, program);
      return kUsage;
    }
    if (config.help) {
      print_worker_usage(out, program);
      return kOk;
    }
    return run_worker(config, err);
  }

  if (subcommand == "stats") {
    StatsCliConfig config;
    if (!parse_stats_cli(argc - 1, argv + 1, config, err)) {
      print_stats_usage(err, program);
      return kUsage;
    }
    if (config.help) {
      print_stats_usage(out, program);
      return kOk;
    }
    return run_stats(config, out, err);
  }

  CliConfig config;
  if (!parse_cli(argc, argv, config, err)) {
    print_usage(err, program);
    return kUsage;
  }
  if (config.help) {
    print_usage(out, program);
    return kOk;
  }
  if (config.version) {
    out << kVersion << '\n';
    return kOk;
  }
  if (config.kernel_probe) {
    // What a run on this machine would use: the best supported kernel,
    // demoted to scalar when SCORIS_FORCE_SCALAR is set.
    out << align::simd::dispatch().name << '\n';
    return kOk;
  }
  return run_compare(config, out, err);
}

}  // namespace scoris::cli
