#include "align/display.hpp"

#include <algorithm>
#include <sstream>

namespace scoris::align {
namespace {

using seqio::Code;

char op_char(AlignOp op) {
  switch (op) {
    case AlignOp::kMatch: return 'M';
    case AlignOp::kGapInSeq1: return 'I';
    case AlignOp::kGapInSeq2: return 'D';
  }
  return '?';
}

}  // namespace

std::string render_alignment(std::span<const Code> seq1,
                             std::size_t s1_global, std::size_t q_local_start,
                             std::span<const Code> seq2,
                             std::size_t s2_global, std::size_t s_local_start,
                             const std::vector<AlignOp>& ops,
                             const DisplayOptions& options) {
  // Expand the three display rows column by column.
  std::string qrow, mrow, srow;
  qrow.reserve(ops.size());
  mrow.reserve(ops.size());
  srow.reserve(ops.size());
  std::size_t i = s1_global;
  std::size_t j = s2_global;
  for (const AlignOp op : ops) {
    switch (op) {
      case AlignOp::kMatch: {
        const Code a = seq1[i++];
        const Code b = seq2[j++];
        qrow.push_back(seqio::decode_base(a));
        srow.push_back(seqio::decode_base(b));
        mrow.push_back(seqio::is_base(a) && a == b ? '|' : ' ');
        break;
      }
      case AlignOp::kGapInSeq1:
        qrow.push_back('-');
        srow.push_back(seqio::decode_base(seq2[j++]));
        mrow.push_back(' ');
        break;
      case AlignOp::kGapInSeq2:
        qrow.push_back(seqio::decode_base(seq1[i++]));
        srow.push_back('-');
        mrow.push_back(' ');
        break;
    }
  }

  // Emit width-column blocks with running 1-based local coordinates.
  const int width = std::max(10, options.width);
  const std::size_t label_w =
      std::max(options.query_label.size(), options.sbjct_label.size());
  std::ostringstream out;
  std::size_t q_pos = q_local_start + 1;  // next query base, 1-based
  std::size_t s_pos = s_local_start + 1;
  for (std::size_t col = 0; col < qrow.size();
       col += static_cast<std::size_t>(width)) {
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(width), qrow.size() - col);
    const std::string qseg = qrow.substr(col, n);
    const std::string mseg = mrow.substr(col, n);
    const std::string sseg = srow.substr(col, n);
    const std::size_t q_bases =
        static_cast<std::size_t>(std::count_if(qseg.begin(), qseg.end(),
                                               [](char c) { return c != '-'; }));
    const std::size_t s_bases =
        static_cast<std::size_t>(std::count_if(sseg.begin(), sseg.end(),
                                               [](char c) { return c != '-'; }));

    const auto pad = [&](const std::string& label) {
      return label + std::string(label_w - label.size(), ' ');
    };
    out << pad(options.query_label) << ' ' << q_pos << '\t' << qseg << '\t'
        << (q_pos + q_bases - 1) << '\n';
    out << pad("") << ' ' << std::string(std::to_string(q_pos).size(), ' ')
        << '\t' << mseg << '\n';
    out << pad(options.sbjct_label) << ' ' << s_pos << '\t' << sseg << '\t'
        << (s_pos + s_bases - 1) << '\n';
    if (col + n < qrow.size()) out << '\n';
    q_pos += q_bases;
    s_pos += s_bases;
  }
  return out.str();
}

std::string to_cigar(const std::vector<AlignOp>& ops) {
  std::string out;
  std::size_t run = 0;
  char cur = 0;
  for (const AlignOp op : ops) {
    const char c = op_char(op);
    if (c == cur) {
      ++run;
    } else {
      if (run > 0) out += std::to_string(run) + cur;
      cur = c;
      run = 1;
    }
  }
  if (run > 0) out += std::to_string(run) + cur;
  return out;
}

}  // namespace scoris::align
