#include "align/gapped.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace scoris::align {
namespace {

using seqio::Code;
using seqio::kSentinel;
using seqio::Pos;

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

struct OneDirResult {
  std::int32_t score = 0;
  std::size_t len1 = 0;  // characters of seq1 consumed at the best cell
  std::size_t len2 = 0;
};

/// Reusable per-thread DP scratch.  Step 3 runs one extension per HSP, so
/// avoiding a fresh allocation per call matters; the arrays grow to the
/// longest extension seen by this thread and are reused.
struct Scratch {
  std::vector<std::int32_t> h_prev;
  std::vector<std::int32_t> h_cur;
  std::vector<std::int32_t> f;

  void ensure(std::size_t n) {
    if (h_prev.size() < n) {
      const std::size_t cap = std::max(n, h_prev.size() * 2 + 64);
      h_prev.resize(cap);
      h_cur.resize(cap);
      f.resize(cap);
    }
  }
};

thread_local Scratch tl_scratch;

/// Adaptive-band x-drop extension of the (implicit) sequences a[0..) and
/// b[0..), read through `dir` (+1 forward from the anchor, -1 backward).
/// Sequence ends are discovered lazily: a kSentinel (or running off the
/// span, or exceeding max_extent) terminates that axis — no pre-scan.
OneDirResult xdrop_one_direction(std::span<const Code> seq1, Pos anchor1,
                                 std::span<const Code> seq2, Pos anchor2,
                                 int dir, std::size_t max_extent,
                                 const ScoringParams& params) {
  OneDirResult best;  // the empty extension scores 0

  // Available span on each axis before the bank boundary (sentinels are
  // detected during the walk; these bounds only prevent out-of-range
  // reads).
  const std::size_t n1 =
      std::min(max_extent, dir > 0 ? seq1.size() - anchor1
                                   : static_cast<std::size_t>(anchor1));
  std::size_t n2 =
      std::min(max_extent, dir > 0 ? seq2.size() - anchor2
                                   : static_cast<std::size_t>(anchor2));
  if (n1 == 0 || n2 == 0) return best;

  const auto a = [&](std::size_t i) -> Code {
    return seq1[dir > 0 ? anchor1 + i
                        : static_cast<std::size_t>(anchor1 - 1 - i)];
  };
  const auto b = [&](std::size_t j) -> Code {
    return seq2[dir > 0 ? anchor2 + j
                        : static_cast<std::size_t>(anchor2 - 1 - j)];
  };

  const int xdrop = params.xdrop_gapped;
  const int gap_first = params.gap_first();
  const int ge = params.gap_extend;

  Scratch& sc = tl_scratch;
  sc.ensure(64);
  auto* h_prev = &sc.h_prev;
  auto* h_cur = &sc.h_cur;
  auto& f = sc.f;

  std::int32_t best_score = 0;

  // Row 0: pure gaps in seq1 (consume b only).
  (*h_prev)[0] = 0;
  std::size_t prev_lo = 0;
  std::size_t prev_hi = 0;
  for (std::size_t j = 1; j <= n2; ++j) {
    if (b(j - 1) == kSentinel) {
      n2 = j - 1;
      break;
    }
    const std::int32_t v = -(params.gap_open + static_cast<int>(j) * ge);
    if (best_score - v > xdrop) break;
    // ensure() may reallocate vector storage, but h_prev/h_cur point at the
    // vector objects themselves, so they stay valid.
    sc.ensure(j + 2);
    (*h_prev)[j] = v;
    prev_hi = j;
  }
  // The scratch persists across calls; row 1 reads f[] over the row-0
  // window, so those entries must not leak F values from a previous
  // extension.  (Later rows only read f[] where the previous row wrote it.)
  std::fill(f.begin(), f.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(f.size(), prev_hi + 2)),
            kNegInf);

  for (std::size_t i = 1; i <= n1; ++i) {
    const Code ai = a(i - 1);
    if (ai == kSentinel) break;

    const auto hp = [&](std::size_t j) -> std::int32_t {
      return (j < prev_lo || j > prev_hi) ? kNegInf : (*h_prev)[j];
    };
    const auto fp = [&](std::size_t j) -> std::int32_t {
      return (j < prev_lo || j > prev_hi) ? kNegInf : f[j];
    };

    std::int32_t e = kNegInf;  // horizontal gap state, row-local
    std::size_t new_lo = SIZE_MAX;
    std::size_t new_hi = 0;
    std::int32_t row_best = kNegInf;
    std::size_t row_best_j = 0;

    std::size_t j = prev_lo;

    // Column 0 (no b consumed): only vertical gaps reach it.
    if (j == 0) {
      const std::int32_t v = -(params.gap_open + static_cast<int>(i) * ge);
      const std::int32_t h0 = (best_score - v > xdrop) ? kNegInf : v;
      (*h_cur)[0] = h0;
      if (h0 > kNegInf) {
        new_lo = 0;
        new_hi = 0;
      }
      j = 1;
    }

    const std::size_t j_limit = std::min(n2, prev_hi + 1);
    for (; j <= n2; ++j) {
      // Beyond the previous row's reach only the row-local E can feed us.
      if (j > j_limit && e <= best_score - xdrop) break;

      const Code bj = b(j - 1);
      if (bj == kSentinel) {
        n2 = j - 1;  // bank boundary on the b axis
        break;
      }
      sc.ensure(j + 2);

      // Vertical gap: consume a(i) without b.
      const std::int32_t hpj = hp(j);
      const std::int32_t f_open = hpj > kNegInf ? hpj - gap_first : kNegInf;
      const std::int32_t fpj = fp(j);
      const std::int32_t f_ext = fpj > kNegInf ? fpj - ge : kNegInf;
      const std::int32_t f_val = std::max(f_open, f_ext);

      // Diagonal: consume a(i) and b(j).
      const std::int32_t hpd = j >= 1 ? hp(j - 1) : kNegInf;
      const std::int32_t diag =
          hpd > kNegInf ? hpd + params.score(ai, bj) : kNegInf;

      std::int32_t h = std::max({diag, e, f_val});
      if (best_score - h > xdrop) h = kNegInf;
      (*h_cur)[j] = h;
      f[j] = f_val;  // safe: fp(j) was consumed above

      if (h > kNegInf) {
        if (new_lo == SIZE_MAX) new_lo = j;
        new_hi = j;
        if (h > row_best) {
          row_best = h;
          row_best_j = j;
        }
      }

      // E for the next column of this row.
      const std::int32_t e_open = h > kNegInf ? h - gap_first : kNegInf;
      const std::int32_t e_ext = e > kNegInf ? e - ge : kNegInf;
      e = std::max(e_open, e_ext);
      if (best_score - e > xdrop) e = kNegInf;
    }

    if (new_lo == SIZE_MAX) break;  // no live cell: extension finished

    if (row_best > best_score) {
      best_score = row_best;
      best.score = best_score;
      best.len1 = i;
      best.len2 = row_best_j;
    }

    std::swap(h_prev, h_cur);
    prev_lo = new_lo;
    prev_hi = new_hi;
  }

  // The swap dance may leave h_prev/h_cur pointing at either buffer; no
  // state persists between calls, so nothing to restore.
  return best;
}

}  // namespace

GappedExtent extend_gapped(std::span<const Code> seq1,
                           std::span<const Code> seq2, Pos mid1, Pos mid2,
                           const ScoringParams& params,
                           std::size_t max_extent) {
  const OneDirResult right =
      xdrop_one_direction(seq1, mid1, seq2, mid2, +1, max_extent, params);
  const OneDirResult left =
      xdrop_one_direction(seq1, mid1, seq2, mid2, -1, max_extent, params);

  GappedExtent out;
  out.s1 = mid1 - static_cast<Pos>(left.len1);
  out.s2 = mid2 - static_cast<Pos>(left.len2);
  out.e1 = mid1 + static_cast<Pos>(right.len1);
  out.e2 = mid2 + static_cast<Pos>(right.len2);
  out.score = left.score + right.score;
  return out;
}

AlignmentStats banded_global_stats(std::span<const Code> seq1, Pos s1, Pos e1,
                                   std::span<const Code> seq2, Pos s2, Pos e2,
                                   const ScoringParams& params,
                                   std::int32_t* out_score,
                                   std::vector<AlignOp>* out_ops) {
  const std::size_t n1 = e1 - s1;
  const std::size_t n2 = e2 - s2;
  AlignmentStats stats;
  if (out_ops != nullptr) out_ops->clear();

  // Degenerate cases: one side empty -> all-gap alignment.
  if (n1 == 0 || n2 == 0) {
    const std::size_t g = std::max(n1, n2);
    stats.length = static_cast<std::uint32_t>(g);
    stats.gap_columns = static_cast<std::uint32_t>(g);
    stats.gap_opens = g > 0 ? 1 : 0;
    if (out_score != nullptr) {
      *out_score = g == 0 ? 0
                          : -(params.gap_open +
                              static_cast<int>(g) * params.gap_extend);
    }
    if (out_ops != nullptr) {
      out_ops->assign(g, n1 == 0 ? AlignOp::kGapInSeq1 : AlignOp::kGapInSeq2);
    }
    return stats;
  }

  // Band over k = j - i.  Any x-drop path deviates from the straight
  // endpoint-to-endpoint line by at most xdrop/gap_extend gap columns.
  const int excursion = params.xdrop_gapped / std::max(1, params.gap_extend);
  const int dn = static_cast<int>(n2) - static_cast<int>(n1);
  const int kmin = std::min(0, dn) - excursion - 2;
  const int kmax = std::max(0, dn) + excursion + 2;
  const std::size_t band = static_cast<std::size_t>(kmax - kmin + 1);

  // Traceback byte per cell: bits 0-1 = H source (0 diag, 1 E, 2 F,
  // 3 unreachable); bit 2: the E state feeding the *next* column extends an
  // E run; bit 3: the F state of this cell extends an F run.
  std::vector<std::uint8_t> tb((n1 + 1) * band, 3);
  std::vector<std::int32_t> h_prev(band, kNegInf);
  std::vector<std::int32_t> h_cur(band, kNegInf);
  std::vector<std::int32_t> f_prev(band, kNegInf);
  std::vector<std::int32_t> f_cur(band, kNegInf);

  const int gap_first = params.gap_first();
  const int ge = params.gap_extend;

  const auto kidx = [&](std::size_t i, std::size_t j) -> std::size_t {
    return static_cast<std::size_t>(static_cast<int>(j) -
                                    static_cast<int>(i) - kmin);
  };
  const auto in_band = [&](std::size_t i, std::size_t j) -> bool {
    const int k = static_cast<int>(j) - static_cast<int>(i);
    return k >= kmin && k <= kmax;
  };

  // Row 0: E chain along the top edge.
  for (std::size_t j = 0; j <= n2 && in_band(0, j); ++j) {
    h_prev[kidx(0, j)] =
        j == 0 ? 0 : -(params.gap_open + static_cast<int>(j) * ge);
    tb[kidx(0, j)] = j == 0 ? 0 : static_cast<std::uint8_t>(1 | 4);
  }

  for (std::size_t i = 1; i <= n1; ++i) {
    std::fill(h_cur.begin(), h_cur.end(), kNegInf);
    std::fill(f_cur.begin(), f_cur.end(), kNegInf);
    std::int32_t e = kNegInf;
    const Code ai = seq1[s1 + i - 1];
    const std::size_t j_lo = static_cast<std::size_t>(
        std::max<std::int64_t>(0, static_cast<std::int64_t>(i) + kmin));
    const std::size_t j_hi = static_cast<std::size_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(n2), static_cast<std::int64_t>(i) + kmax));

    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const std::size_t k = kidx(i, j);

      // F: vertical gap, from (i-1, j) which sits at band column k+1.
      std::int32_t f_val = kNegInf;
      bool f_ext = false;
      if (k + 1 < band) {
        const std::int32_t f_open =
            h_prev[k + 1] > kNegInf ? h_prev[k + 1] - gap_first : kNegInf;
        const std::int32_t f_cont =
            f_prev[k + 1] > kNegInf ? f_prev[k + 1] - ge : kNegInf;
        f_val = std::max(f_open, f_cont);
        f_ext = f_cont > f_open;
      }
      f_cur[k] = f_val;

      // Diagonal from (i-1, j-1) = band column k of the previous row.
      std::int32_t diag = kNegInf;
      if (j >= 1 && h_prev[k] > kNegInf) {
        diag = h_prev[k] + params.score(ai, seq2[s2 + j - 1]);
      }

      std::int32_t h = diag;
      std::uint8_t trace = 0;
      if (e > h) {
        h = e;
        trace = 1;
      }
      if (f_val > h) {
        h = f_val;
        trace = 2;
      }
      if (h <= kNegInf) trace = 3;
      h_cur[k] = h;

      std::uint8_t byte = trace;
      if (f_ext) byte |= 8;

      // E feeding column j+1 of this row.
      const std::int32_t e_open = h > kNegInf ? h - gap_first : kNegInf;
      const std::int32_t e_cont = e > kNegInf ? e - ge : kNegInf;
      if (e_cont > e_open) byte |= 4;
      e = std::max(e_open, e_cont);

      tb[i * band + k] = byte;
    }
    h_prev.swap(h_cur);
    f_prev.swap(f_cur);
  }

  if (!in_band(n1, n2)) {
    throw std::logic_error("banded_global_stats: endpoint outside band");
  }
  const std::int32_t final_score = h_prev[kidx(n1, n2)];
  if (out_score != nullptr) *out_score = final_score;

  // Traceback.  State 0 = H, 1 = E (gap in seq1, consumes b), 2 = F (gap in
  // seq2, consumes a).  E-continuation for the E state entered at (i,j) is
  // encoded in the byte of (i, j-1); F-continuation in the byte of (i,j).
  std::size_t i = n1;
  std::size_t j = n2;
  int state = 0;
  while (i > 0 || j > 0) {
    const std::uint8_t byte = tb[i * band + kidx(i, j)];
    if (state == 0) {
      const int src = byte & 3;
      if (src == 0 && i > 0 && j > 0) {
        const Code a = seq1[s1 + i - 1];
        const Code b = seq2[s2 + j - 1];
        ++stats.length;
        if (seqio::is_base(a) && a == b) {
          ++stats.matches;
        } else {
          ++stats.mismatches;
        }
        if (out_ops != nullptr) out_ops->push_back(AlignOp::kMatch);
        --i;
        --j;
      } else if (src == 1) {
        state = 1;
        ++stats.gap_opens;
      } else if (src == 2) {
        state = 2;
        ++stats.gap_opens;
      } else {
        throw std::logic_error("banded_global_stats: broken traceback");
      }
      continue;
    }
    if (state == 1) {
      // Gap in seq1: consume b(j).
      ++stats.length;
      ++stats.gap_columns;
      if (out_ops != nullptr) out_ops->push_back(AlignOp::kGapInSeq1);
      const std::uint8_t left_byte =
          (j >= 1) ? tb[i * band + kidx(i, j - 1)] : 0;
      --j;
      if ((left_byte & 4) == 0) state = 0;
      continue;
    }
    // state == 2: gap in seq2, consume a(i).
    ++stats.length;
    ++stats.gap_columns;
    if (out_ops != nullptr) out_ops->push_back(AlignOp::kGapInSeq2);
    const bool f_continues = (byte & 8) != 0;
    --i;
    if (!f_continues) state = 0;
  }

  if (out_ops != nullptr) std::reverse(out_ops->begin(), out_ops->end());
  return stats;
}

}  // namespace scoris::align
