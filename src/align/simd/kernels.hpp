// Raw match-run kernels — one pair of functions per instruction set.
//
// The primitive every step-2 extension is built from is "how many leading
// characters of these two code arrays are identical concrete bases?".  A
// character pair counts as a match exactly when a[i] == b[i] AND a[i] < 4:
// equal kAmbiguous or kSentinel bytes compare equal but are NOT matches,
// which is precisely the `is_base(a) && a == b` predicate of the scalar
// x-drop loops.  The SIMD variants evaluate 16 (SSE4.1) or 32 (AVX2)
// characters per iteration and reduce to the first mismatch via
// movemask + count-trailing/leading-zeros.
//
// Bounds contract: a caller passes `max`, the number of characters it can
// legally read in the walk direction, and every load stays inside those
// `max` bytes (vector loads are only issued for full in-bounds blocks; the
// tail falls back to the scalar loop).  No padding or alignment is required
// of the sequence buffers.
//
// These functions are implementation details of the dispatch layer; call
// through align::simd::KernelOps (kernel_dispatch.hpp) instead.
#pragma once

#include <cstddef>

#include "seqio/nucleotide.hpp"

namespace scoris::align::simd {

/// Leading i in [0, max) with a[i] == b[i] and a[i] a concrete base.
std::size_t match_run_fwd_scalar(const seqio::Code* a, const seqio::Code* b,
                                 std::size_t max);

/// Leading i in [0, max) with a[-1-i] == b[-1-i] and a[-1-i] a concrete
/// base (the walk moves towards lower addresses; `a`/`b` point one past
/// the first character examined).
std::size_t match_run_bwd_scalar(const seqio::Code* a, const seqio::Code* b,
                                 std::size_t max);

#if defined(__x86_64__) || defined(__i386__)
std::size_t match_run_fwd_sse41(const seqio::Code* a, const seqio::Code* b,
                                std::size_t max);
std::size_t match_run_bwd_sse41(const seqio::Code* a, const seqio::Code* b,
                                std::size_t max);
std::size_t match_run_fwd_avx2(const seqio::Code* a, const seqio::Code* b,
                               std::size_t max);
std::size_t match_run_bwd_avx2(const seqio::Code* a, const seqio::Code* b,
                               std::size_t max);
#endif

}  // namespace scoris::align::simd
