#include "align/simd/kernel_dispatch.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "align/simd/kernels.hpp"

namespace scoris::align::simd {
namespace {

constexpr KernelOps kScalarOps{Kernel::kScalar, "scalar",
                               &match_run_fwd_scalar,
                               &match_run_bwd_scalar};

#if defined(__x86_64__) || defined(__i386__)
constexpr KernelOps kSse41Ops{Kernel::kSse41, "sse4.1",
                              &match_run_fwd_sse41, &match_run_bwd_sse41};
constexpr KernelOps kAvx2Ops{Kernel::kAvx2, "avx2", &match_run_fwd_avx2,
                             &match_run_bwd_avx2};
#endif

bool force_scalar_env() {
  const char* v = std::getenv("SCORIS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

}  // namespace

const char* to_string(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSse41:
      return "sse4.1";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool cpu_supports(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Kernel::kSse41:
      return __builtin_cpu_supports("sse4.1") != 0;
    case Kernel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Kernel::kSse41:
    case Kernel::kAvx2:
      return false;
#endif
  }
  return false;
}

const KernelOps& kernel(Kernel k) {
  if (!cpu_supports(k)) {
    throw std::runtime_error(std::string("simd: kernel ") + to_string(k) +
                             " is not supported on this CPU");
  }
  switch (k) {
#if defined(__x86_64__) || defined(__i386__)
    case Kernel::kSse41:
      return kSse41Ops;
    case Kernel::kAvx2:
      return kAvx2Ops;
#endif
    default:
      return kScalarOps;
  }
}

const KernelOps& dispatch() {
  // Environment and CPUID are immutable for the process lifetime, so the
  // probe runs exactly once; every later call is one load.
  static const KernelOps* best = [] {
    if (force_scalar_env()) return &kScalarOps;
    if (cpu_supports(Kernel::kAvx2)) return &kernel(Kernel::kAvx2);
    if (cpu_supports(Kernel::kSse41)) return &kernel(Kernel::kSse41);
    return &kScalarOps;
  }();
  return *best;
}

const KernelOps& select(bool force_scalar) {
  return force_scalar ? kScalarOps : dispatch();
}

}  // namespace scoris::align::simd
