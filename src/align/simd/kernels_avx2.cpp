// AVX2 match-run kernels: 32 characters per iteration.
//
// Compiled with -mavx2 (see CMakeLists.txt); reached only through the
// runtime dispatcher after a CPU-support check.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "align/simd/kernels.hpp"

namespace scoris::align::simd {

using seqio::Code;

namespace {

/// 32-bit mask with bit j set when lane j is NOT a match.
inline std::uint32_t mismatch_mask32(const Code* a, const Code* b) {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i eq = _mm256_cmpeq_epi8(va, vb);
  const __m256i base = _mm256_cmpeq_epi8(
      _mm256_subs_epu8(va, _mm256_set1_epi8(3)), _mm256_setzero_si256());
  const auto match = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_and_si256(eq, base)));
  return ~match;
}

}  // namespace

std::size_t match_run_fwd_avx2(const Code* a, const Code* b,
                               std::size_t max) {
  std::size_t i = 0;
  while (i + 32 <= max) {
    const std::uint32_t mm = mismatch_mask32(a + i, b + i);
    if (mm != 0) return i + static_cast<std::size_t>(__builtin_ctz(mm));
    i += 32;
  }
  return i + match_run_fwd_scalar(a + i, b + i, max - i);
}

std::size_t match_run_bwd_avx2(const Code* a, const Code* b,
                               std::size_t max) {
  std::size_t i = 0;
  while (i + 32 <= max) {
    const std::uint32_t mm = mismatch_mask32(a - i - 32, b - i - 32);
    // Lane 31 is the character closest to the cursor; count leading
    // zeros of the mismatch mask for the backward run length.
    if (mm != 0) return i + static_cast<std::size_t>(__builtin_clz(mm));
    i += 32;
  }
  return i + match_run_bwd_scalar(a - i, b - i, max - i);
}

}  // namespace scoris::align::simd

#endif  // x86
