// Runtime-dispatched SIMD kernels for the step-2 hot path.
//
// The step-2 scan spends its time in two-sided ungapped extension, whose
// inner loop is "walk identical concrete bases until the first mismatch".
// That primitive vectorizes cleanly (compare 16/32 code bytes, movemask,
// count zeros — see kernels.hpp), while the x-drop scoring and the ORIS
// order-abort bookkeeping stay scalar and only run once per *match-run
// boundary* instead of once per character.
//
// Selection happens at runtime so one binary serves every x86 machine
// (and non-x86 builds fall back to scalar at compile time):
//
//   dispatch()        — the best kernel this CPU supports, unless the
//                       SCORIS_FORCE_SCALAR environment variable is set
//                       to anything but "" or "0" (read once per process);
//   kernel(k)         — a specific kernel, for differential tests and
//                       benchmarks (throws when the CPU lacks it);
//   select(force)     — dispatch(), or the scalar kernel when `force`
//                       (the Options::force_scalar_kernel knob).
//
// The invariant the whole layer is built on: every kernel produces
// IDENTICAL results — same HSPs, same order-abort decisions, hence
// byte-identical m8 output.  tests/simd_test.cpp enforces this
// differentially, and CI diffs a forced-scalar run against the
// dispatched run across the determinism matrix.
#pragma once

#include <cstddef>
#include <string>

#include "seqio/nucleotide.hpp"

namespace scoris::align::simd {

enum class Kernel { kScalar = 0, kSse41 = 1, kAvx2 = 2 };

/// One kernel's entry points (see kernels.hpp for the exact semantics
/// and the bounds contract).  References returned by the dispatch layer
/// point at immutable static storage and stay valid forever.
struct KernelOps {
  Kernel kind = Kernel::kScalar;
  const char* name = "scalar";
  std::size_t (*match_run_fwd)(const seqio::Code* a, const seqio::Code* b,
                               std::size_t max) = nullptr;
  std::size_t (*match_run_bwd)(const seqio::Code* a, const seqio::Code* b,
                               std::size_t max) = nullptr;
};

/// "scalar" / "sse4.1" / "avx2".
[[nodiscard]] const char* to_string(Kernel k);

/// True when this build AND this CPU can run `k` (scalar: always).
[[nodiscard]] bool cpu_supports(Kernel k);

/// The named kernel. Throws std::runtime_error when unsupported here.
[[nodiscard]] const KernelOps& kernel(Kernel k);

/// Best supported kernel, demoted to scalar when SCORIS_FORCE_SCALAR is
/// set (cached after the first call).
[[nodiscard]] const KernelOps& dispatch();

/// dispatch(), or the scalar kernel when `force_scalar`.
[[nodiscard]] const KernelOps& select(bool force_scalar);

}  // namespace scoris::align::simd
