#include "align/simd/kernels.hpp"

namespace scoris::align::simd {

using seqio::Code;

std::size_t match_run_fwd_scalar(const Code* a, const Code* b,
                                 std::size_t max) {
  std::size_t i = 0;
  while (i < max && a[i] == b[i] && seqio::is_base(a[i])) ++i;
  return i;
}

std::size_t match_run_bwd_scalar(const Code* a, const Code* b,
                                 std::size_t max) {
  std::size_t i = 0;
  while (i < max && a[-1 - static_cast<std::ptrdiff_t>(i)] ==
                        b[-1 - static_cast<std::ptrdiff_t>(i)] &&
         seqio::is_base(a[-1 - static_cast<std::ptrdiff_t>(i)])) {
    ++i;
  }
  return i;
}

}  // namespace scoris::align::simd
