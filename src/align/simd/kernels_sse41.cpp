// SSE4.1 match-run kernels: 16 characters per iteration.
//
// This translation unit is compiled with -msse4.1 (see CMakeLists.txt);
// nothing outside src/align/simd/ may assume the flag.  Callers reach
// these functions only through the runtime dispatcher, which verifies
// CPU support first.
#if defined(__x86_64__) || defined(__i386__)

#include <smmintrin.h>

#include "align/simd/kernels.hpp"

namespace scoris::align::simd {

using seqio::Code;

namespace {

/// 16-bit mask with bit j set when lane j is NOT a match (unequal bytes,
/// or an equal pair that is not a concrete base).
inline unsigned mismatch_mask16(const Code* a, const Code* b) {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i eq = _mm_cmpeq_epi8(va, vb);
  // a <= 3 unsigned <=> saturating a - 3 == 0; sentinels (0xFF) and
  // ambiguity codes (0xFE) fail this lane test even when equal.
  const __m128i base = _mm_cmpeq_epi8(_mm_subs_epu8(va, _mm_set1_epi8(3)),
                                      _mm_setzero_si128());
  const unsigned match =
      static_cast<unsigned>(_mm_movemask_epi8(_mm_and_si128(eq, base)));
  return match ^ 0xFFFFu;
}

}  // namespace

std::size_t match_run_fwd_sse41(const Code* a, const Code* b,
                                std::size_t max) {
  std::size_t i = 0;
  while (i + 16 <= max) {
    const unsigned mm = mismatch_mask16(a + i, b + i);
    // Lane j holds a[i + j]; the first mismatch is the lowest set bit.
    if (mm != 0) return i + static_cast<std::size_t>(__builtin_ctz(mm));
    i += 16;
  }
  return i + match_run_fwd_scalar(a + i, b + i, max - i);
}

std::size_t match_run_bwd_sse41(const Code* a, const Code* b,
                                std::size_t max) {
  std::size_t i = 0;
  while (i + 16 <= max) {
    const unsigned mm = mismatch_mask16(a - i - 16, b - i - 16);
    // Lane 15 holds a[-1-i], lane 14 holds a[-2-i], ...: the first
    // mismatch walking backwards is the highest set bit, so the run
    // length is the number of leading zero bits of the 16-bit mask.
    if (mm != 0) {
      return i + static_cast<std::size_t>(__builtin_clz(mm)) - 16u;
    }
    i += 16;
  }
  return i + match_run_bwd_scalar(a - i, b - i, max - i);
}

}  // namespace scoris::align::simd

#endif  // x86
