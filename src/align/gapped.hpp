// Gapped x-drop extension (step 3 of the ORIS pipeline, and the gapped
// stage of the BLASTN baseline).
//
// Two pieces:
//  * extend_gapped(): from an anchor point (typically the middle of an
//    HSP, paper section 2.3) grow an affine-gap alignment left and right
//    with an adaptive-band x-drop dynamic program (the BLAST ALIGN-style
//    band: only cells within xdrop_gapped of the running best survive a
//    row).  Returns endpoints and raw score.
//  * banded_global_stats(): once endpoints are fixed, re-align the two
//    substrings with a banded global Gotoh DP *with traceback* to obtain
//    the m8 column statistics (identities, mismatches, gap opens, length).
//    The band is wide enough to contain any path the x-drop pass could
//    have produced, so the recomputed score is >= the x-drop score.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/records.hpp"
#include "align/scoring.hpp"

namespace scoris::align {

/// Result of a two-sided gapped extension from an anchor point.
struct GappedExtent {
  seqio::Pos s1 = 0;
  seqio::Pos e1 = 0;
  seqio::Pos s2 = 0;
  seqio::Pos e2 = 0;
  std::int32_t score = 0;
};

/// Extend from the anchor pair (mid1, mid2): the returned region satisfies
/// s1 <= mid1 <= e1 and s2 <= mid2 <= e2 (half-open ends).  Extension never
/// crosses a kSentinel and each direction explores at most `max_extent`
/// characters.
[[nodiscard]] GappedExtent extend_gapped(std::span<const seqio::Code> seq1,
                                         std::span<const seqio::Code> seq2,
                                         seqio::Pos mid1, seqio::Pos mid2,
                                         const ScoringParams& params,
                                         std::size_t max_extent = 1u << 20);

/// Alignment column operations, in alignment order.
enum class AlignOp : std::uint8_t {
  kMatch = 0,      ///< diagonal column (match or mismatch)
  kGapInSeq1 = 1,  ///< column consumes seq2 only (gap in seq1)
  kGapInSeq2 = 2,  ///< column consumes seq1 only (gap in seq2)
};

/// Banded global affine alignment of seq1[s1,e1) vs seq2[s2,e2).
/// Returns column statistics and writes the global score to *out_score when
/// non-null.  When `out_ops` is non-null it receives the optimal path's
/// column operations in alignment order (for pairwise display / CIGAR).
/// The band automatically covers the length difference plus the largest
/// gap excursion an x-drop path could make.
[[nodiscard]] AlignmentStats banded_global_stats(
    std::span<const seqio::Code> seq1, seqio::Pos s1, seqio::Pos e1,
    std::span<const seqio::Code> seq2, seqio::Pos s2, seqio::Pos e2,
    const ScoringParams& params, std::int32_t* out_score = nullptr,
    std::vector<AlignOp>* out_ops = nullptr);

}  // namespace scoris::align
