#include "align/greedy.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace scoris::align {
namespace {

using seqio::Code;
using seqio::kSentinel;
using seqio::Pos;

constexpr std::int64_t kUnreached = -1;

struct OneDirGreedy {
  std::int64_t score2 = 0;  // doubled score: r*(i+j) - d*(2p + r)
  std::size_t len1 = 0;
  std::size_t len2 = 0;
  std::uint32_t differences = 0;
};

/// One-direction greedy extension of the implicit suffixes a[0..) b[0..)
/// (dir = +1 forward from the anchors, -1 backward).
OneDirGreedy greedy_one_direction(std::span<const Code> seq1, Pos anchor1,
                                  std::span<const Code> seq2, Pos anchor2,
                                  int dir, std::size_t max_extent,
                                  const ScoringParams& params) {
  OneDirGreedy best;
  const std::size_t n1 =
      std::min(max_extent, dir > 0 ? seq1.size() - anchor1
                                   : static_cast<std::size_t>(anchor1));
  const std::size_t n2 =
      std::min(max_extent, dir > 0 ? seq2.size() - anchor2
                                   : static_cast<std::size_t>(anchor2));
  if (n1 == 0 || n2 == 0) return best;

  const auto a = [&](std::size_t i) -> Code {
    return seq1[dir > 0 ? anchor1 + i
                        : static_cast<std::size_t>(anchor1 - 1 - i)];
  };
  const auto b = [&](std::size_t j) -> Code {
    return seq2[dir > 0 ? anchor2 + j
                        : static_cast<std::size_t>(anchor2 - 1 - j)];
  };

  const std::int64_t r = params.match;
  const std::int64_t p = params.mismatch;
  const std::int64_t diff_cost2 = 2 * p + r;  // doubled cost per difference
  const std::int64_t xdrop2 = 2 * params.xdrop_gapped;

  // Slide along exact matches from (i, j); returns the new i (j moves in
  // lockstep).  Sentinels and ambiguous bases stop the slide (they can
  // never match).
  const auto slide = [&](std::size_t i, std::size_t j) -> std::size_t {
    while (i < n1 && j < n2) {
      const Code x = a(i);
      if (x == kSentinel || b(j) == kSentinel) break;
      if (!seqio::is_base(x) || x != b(j)) break;
      ++i;
      ++j;
    }
    return i;
  };

  // Hard boundaries: a sentinel ends the usable span on its axis.  Found
  // lazily during slides/steps; conservatively track them.
  // R[k + offset] = furthest i on diagonal k = i - j with d differences.
  const std::size_t d_max = static_cast<std::size_t>(
      std::max<std::int64_t>(1, xdrop2 / std::max<std::int64_t>(1, diff_cost2) +
                                    4));
  const std::size_t width = 2 * d_max + 3;
  const std::size_t offset = d_max + 1;
  std::vector<std::int64_t> r_prev(width, kUnreached);
  std::vector<std::int64_t> r_cur(width, kUnreached);

  // d = 0: slide from the origin.
  {
    const std::size_t i0 = slide(0, 0);
    r_prev[offset] = static_cast<std::int64_t>(i0);
    const std::int64_t s2v = r * static_cast<std::int64_t>(2 * i0);
    if (s2v > best.score2) {
      best.score2 = s2v;
      best.len1 = i0;
      best.len2 = i0;
      best.differences = 0;
    }
  }

  for (std::size_t d = 1; d <= d_max; ++d) {
    std::fill(r_cur.begin(), r_cur.end(), kUnreached);
    bool any_alive = false;
    const auto dk = static_cast<std::int64_t>(d);
    for (std::int64_t k = -dk; k <= dk; ++k) {
      const std::size_t idx = static_cast<std::size_t>(k + static_cast<std::int64_t>(offset));
      // A consumed character may never be a sentinel (bank boundary).
      const auto a_ok = [&](std::int64_t pos) {
        return pos >= 0 && pos < static_cast<std::int64_t>(n1) &&
               a(static_cast<std::size_t>(pos)) != kSentinel;
      };
      const auto b_ok = [&](std::int64_t pos) {
        return pos >= 0 && pos < static_cast<std::int64_t>(n2) &&
               b(static_cast<std::size_t>(pos)) != kSentinel;
      };
      // Reach (i, j) with one more difference from d-1 states:
      //   mismatch: same diagonal, consumes a(prev) and b(prev - k)
      //   gap in b: diagonal k-1, consumes a(prev) only
      //   gap in a: diagonal k+1, consumes b(prev - k - 1) only
      std::int64_t i = kUnreached;
      if (const std::int64_t prev = r_prev[idx];
          prev != kUnreached && a_ok(prev) && b_ok(prev - k)) {
        i = std::max(i, prev + 1);
      }
      if (idx >= 1) {
        if (const std::int64_t prev = r_prev[idx - 1];
            prev != kUnreached && a_ok(prev)) {
          i = std::max(i, prev + 1);
        }
      }
      if (idx + 1 < width) {
        if (const std::int64_t prev = r_prev[idx + 1];
            prev != kUnreached && b_ok(prev - k - 1)) {
          i = std::max(i, prev);
        }
      }
      if (i == kUnreached) continue;
      // Clamp into the valid rectangle.
      std::int64_t j = i - k;
      if (i > static_cast<std::int64_t>(n1)) continue;
      if (j < 0 || j > static_cast<std::int64_t>(n2)) continue;

      const std::size_t slid =
          slide(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      i = static_cast<std::int64_t>(slid);
      j = i - k;

      const std::int64_t s2v =
          r * (i + j) - static_cast<std::int64_t>(d) * diff_cost2;
      // X-drop: abandon diagonals too far below the best.
      if (best.score2 - s2v > xdrop2) continue;
      r_cur[idx] = i;
      any_alive = true;
      if (s2v > best.score2) {
        best.score2 = s2v;
        best.len1 = static_cast<std::size_t>(i);
        best.len2 = static_cast<std::size_t>(j);
        best.differences = static_cast<std::uint32_t>(d);
      }
    }
    if (!any_alive) break;
    r_prev.swap(r_cur);
  }
  return best;
}

}  // namespace

GreedyExtent greedy_extend(std::span<const Code> seq1,
                           std::span<const Code> seq2, Pos mid1, Pos mid2,
                           const ScoringParams& params,
                           std::size_t max_extent) {
  const OneDirGreedy right =
      greedy_one_direction(seq1, mid1, seq2, mid2, +1, max_extent, params);
  const OneDirGreedy left =
      greedy_one_direction(seq1, mid1, seq2, mid2, -1, max_extent, params);

  GreedyExtent out;
  out.s1 = mid1 - static_cast<Pos>(left.len1);
  out.s2 = mid2 - static_cast<Pos>(left.len2);
  out.e1 = mid1 + static_cast<Pos>(right.len1);
  out.e2 = mid2 + static_cast<Pos>(right.len2);
  out.score = static_cast<std::int32_t>((left.score2 + right.score2) / 2);
  out.differences = left.differences + right.differences;
  return out;
}

}  // namespace scoris::align
