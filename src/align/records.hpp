// Alignment result records flowing between pipeline stages.
#pragma once

#include <cstdint>

#include "seqio/sequence_bank.hpp"

namespace scoris::align {

/// Diagonal number of a hit: global position difference.  HSPs and gapped
/// alignments are sorted by this value (paper sections 2.2 / 2.3).
using Diagonal = std::int64_t;

[[nodiscard]] constexpr Diagonal diagonal_of(seqio::Pos p1, seqio::Pos p2) {
  return static_cast<Diagonal>(p1) - static_cast<Diagonal>(p2);
}

/// Ungapped high-scoring pair over global bank positions; [s,e) half-open.
struct Hsp {
  seqio::Pos s1 = 0;
  seqio::Pos e1 = 0;
  seqio::Pos s2 = 0;
  seqio::Pos e2 = 0;
  std::int32_t score = 0;

  [[nodiscard]] Diagonal diagonal() const { return diagonal_of(s1, s2); }
  [[nodiscard]] std::uint32_t length() const { return e1 - s1; }

  friend bool operator==(const Hsp&, const Hsp&) = default;
};

/// Column statistics of a gapped alignment (for m8 output).
struct AlignmentStats {
  std::uint32_t length = 0;      ///< total alignment columns
  std::uint32_t matches = 0;     ///< identical columns
  std::uint32_t mismatches = 0;  ///< substituted columns
  std::uint32_t gap_opens = 0;   ///< number of gap runs
  std::uint32_t gap_columns = 0; ///< total gap columns

  [[nodiscard]] double percent_identity() const {
    return length == 0 ? 0.0 : 100.0 * matches / static_cast<double>(length);
  }
};

/// Final gapped alignment over global bank positions; [s,e) half-open.
/// When `minus` is set, s2/e2 are positions in the reverse complement of
/// bank2 (m8 output maps them back; see compare::to_m8).
struct GappedAlignment {
  seqio::Pos s1 = 0;
  seqio::Pos e1 = 0;
  seqio::Pos s2 = 0;
  seqio::Pos e2 = 0;
  std::int32_t score = 0;
  AlignmentStats stats;
  double evalue = 0.0;
  double bitscore = 0.0;
  std::uint32_t seq1 = 0;  ///< sequence id in bank1
  std::uint32_t seq2 = 0;  ///< sequence id in bank2
  bool minus = false;      ///< subject matched on the minus strand

  [[nodiscard]] Diagonal start_diagonal() const { return diagonal_of(s1, s2); }
  [[nodiscard]] Diagonal end_diagonal() const { return diagonal_of(e1, e2); }
};

}  // namespace scoris::align
