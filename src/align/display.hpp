// Pairwise alignment rendering.
//
// The paper's prototype "does not report full alignments. It only displays
// the alignment features as it is done in the -m 8 option of BLASTN"
// (section 3.1); full pairwise display is the obvious next-release feature
// and is provided here: a classic BLAST-style three-line block layout
//
//   Query    101 ACGTACGT-ACGT 112
//                |||| ||| ||||
//   Sbjct   2201 ACGTTCGTAACGT 2213
//
// plus a CIGAR serialization of the operation list.
#pragma once

#include <string>
#include <vector>

#include "align/gapped.hpp"
#include "align/records.hpp"

namespace scoris::align {

struct DisplayOptions {
  int width = 60;            ///< alignment columns per block
  std::string query_label = "Query";
  std::string sbjct_label = "Sbjct";
};

/// Render the alignment of seq1[s1..) vs seq2[s2..) described by `ops`.
/// Coordinates printed are 1-based and local (caller passes local starts).
/// `minus` flips the reported subject coordinates (minus-strand display):
/// the subject positions count down from `s2_local + consumed`.
[[nodiscard]] std::string render_alignment(
    std::span<const seqio::Code> seq1, std::size_t s1_global,
    std::size_t q_local_start, std::span<const seqio::Code> seq2,
    std::size_t s2_global, std::size_t s_local_start,
    const std::vector<AlignOp>& ops, const DisplayOptions& options = {});

/// CIGAR string for an operation list (M / I / D run-length encoded;
/// I = gap in seq1 consuming seq2, D = gap in seq2 consuming seq1).
[[nodiscard]] std::string to_cigar(const std::vector<AlignOp>& ops);

}  // namespace scoris::align
