#include "align/classic.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace scoris::align {
namespace {

using seqio::Code;

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

}  // namespace

ClassicResult needleman_wunsch(std::span<const Code> a,
                               std::span<const Code> b,
                               const ScoringParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const int ge = params.gap_extend;

  std::vector<std::int64_t> prev(m + 1);
  std::vector<std::int64_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) {
    prev[j] = -static_cast<std::int64_t>(j) * ge;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = -static_cast<std::int64_t>(i) * ge;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::int64_t diag = prev[j - 1] + params.score(a[i - 1], b[j - 1]);
      const std::int64_t up = prev[j] - ge;
      const std::int64_t left = cur[j - 1] - ge;
      cur[j] = std::max({diag, up, left});
    }
    prev.swap(cur);
  }
  ClassicResult r;
  r.score = prev[m];
  r.e1 = n;
  r.e2 = m;
  return r;
}

ClassicResult smith_waterman(std::span<const Code> a, std::span<const Code> b,
                             const ScoringParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const int ge = params.gap_extend;

  std::vector<std::int64_t> prev(m + 1, 0);
  std::vector<std::int64_t> cur(m + 1, 0);
  ClassicResult best;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::int64_t diag = prev[j - 1] + params.score(a[i - 1], b[j - 1]);
      const std::int64_t up = prev[j] - ge;
      const std::int64_t left = cur[j - 1] - ge;
      cur[j] = std::max<std::int64_t>({0, diag, up, left});
      if (cur[j] > best.score) {
        best.score = cur[j];
        best.e1 = i;
        best.e2 = j;
      }
    }
    prev.swap(cur);
  }
  return best;
}

ClassicResult gotoh_local(std::span<const Code> a, std::span<const Code> b,
                          const ScoringParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const int gf = params.gap_first();
  const int ge = params.gap_extend;

  std::vector<std::int64_t> h_prev(m + 1, 0);
  std::vector<std::int64_t> h_cur(m + 1, 0);
  std::vector<std::int64_t> f(m + 1, kNegInf);
  ClassicResult best;
  for (std::size_t i = 1; i <= n; ++i) {
    h_cur[0] = 0;
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      f[j] = std::max(h_prev[j] - gf, f[j] - ge);
      e = std::max(h_cur[j - 1] - gf, e - ge);
      const std::int64_t diag = h_prev[j - 1] + params.score(a[i - 1], b[j - 1]);
      h_cur[j] = std::max<std::int64_t>({0, diag, e, f[j]});
      if (h_cur[j] > best.score) {
        best.score = h_cur[j];
        best.e1 = i;
        best.e2 = j;
      }
    }
    h_prev.swap(h_cur);
  }
  return best;
}

ClassicResult best_ungapped_local(std::span<const Code> a,
                                  std::span<const Code> b,
                                  const ScoringParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  ClassicResult best;
  // Walk every diagonal; on each, a 1-D Kadane scan over pair scores.
  for (std::int64_t d = -static_cast<std::int64_t>(m) + 1;
       d < static_cast<std::int64_t>(n); ++d) {
    std::size_t i = d >= 0 ? static_cast<std::size_t>(d) : 0;
    std::size_t j = d >= 0 ? 0 : static_cast<std::size_t>(-d);
    std::int64_t run = 0;
    while (i < n && j < m) {
      run = std::max<std::int64_t>(0, run) + params.score(a[i], b[j]);
      if (run > best.score) {
        best.score = run;
        best.e1 = i + 1;
        best.e2 = j + 1;
      }
      ++i;
      ++j;
    }
  }
  return best;
}

}  // namespace scoris::align
