// Scoring system shared by SCORIS-N and the BLASTN baseline.
//
// Nucleotide comparison uses a match reward and mismatch penalty (the
// paper's MATCH / MISMATCH constants); gaps are affine (Gotoh): a run of g
// gap columns costs gap_open + g * gap_extend.  Defaults follow NCBI
// BLASTN 2.2.x: +1/-3, open 5, extend 2.
#pragma once

#include "seqio/nucleotide.hpp"

namespace scoris::align {

struct ScoringParams {
  int match = 1;         ///< reward for an identical A/C/G/T pair
  int mismatch = 3;      ///< penalty magnitude for a non-identical pair
  int gap_open = 5;      ///< affine gap opening cost (charged once per run)
  int gap_extend = 2;    ///< affine per-column gap cost
  int xdrop_ungapped = 16;  ///< raw-score drop-off ending ungapped extension
  int xdrop_gapped = 20;    ///< raw-score drop-off ending gapped extension

  /// Pair score. Ambiguous bases never match; sentinels are handled by the
  /// extension routines (hard boundary), not here.
  [[nodiscard]] int score(seqio::Code a, seqio::Code b) const {
    return (seqio::is_base(a) && a == b) ? match : -mismatch;
  }

  /// Cost of opening-and-extending the first column of a gap run.
  [[nodiscard]] int gap_first() const { return gap_open + gap_extend; }
};

}  // namespace scoris::align
