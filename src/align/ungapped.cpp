#include "align/ungapped.hpp"

#include <algorithm>
#include <cassert>

namespace scoris::align {

using seqio::Code;
using seqio::is_base;
using seqio::kSentinel;
using seqio::Pos;

SideExtension extend_left_plain(std::span<const Code> seq1,
                                std::span<const Code> seq2, Pos p1, Pos p2,
                                const ScoringParams& params) {
  SideExtension best;
  int score = 0;
  int maxi = 0;
  std::int64_t i = static_cast<std::int64_t>(p1) - 1;
  std::int64_t j = static_cast<std::int64_t>(p2) - 1;
  Pos steps = 0;
  while (i >= 0 && j >= 0 && maxi - score < params.xdrop_ungapped) {
    const Code a = seq1[static_cast<std::size_t>(i)];
    const Code b = seq2[static_cast<std::size_t>(j)];
    if (a == kSentinel || b == kSentinel) break;
    score += params.score(a, b);
    ++steps;
    if (score > maxi) {
      maxi = score;
      best.score_gain = score;
      best.span = steps;
    }
    --i;
    --j;
  }
  return best;
}

SideExtension extend_right_plain(std::span<const Code> seq1,
                                 std::span<const Code> seq2, Pos p1, Pos p2,
                                 const ScoringParams& params) {
  SideExtension best;
  int score = 0;
  int maxi = 0;
  std::size_t i = p1;
  std::size_t j = p2;
  Pos steps = 0;
  while (i < seq1.size() && j < seq2.size() &&
         maxi - score < params.xdrop_ungapped) {
    const Code a = seq1[i];
    const Code b = seq2[j];
    if (a == kSentinel || b == kSentinel) break;
    score += params.score(a, b);
    ++steps;
    if (score > maxi) {
      maxi = score;
      best.score_gain = score;
      best.span = steps;
    }
    ++i;
    ++j;
  }
  return best;
}

Hsp extend_ungapped(std::span<const Code> seq1, std::span<const Code> seq2,
                    Pos p1, Pos p2, int w, const ScoringParams& params) {
  assert(w > 0);
  const SideExtension left = extend_left_plain(seq1, seq2, p1, p2, params);
  const SideExtension right =
      extend_right_plain(seq1, seq2, p1 + static_cast<Pos>(w),
                         p2 + static_cast<Pos>(w), params);
  Hsp hsp;
  hsp.s1 = p1 - left.span;
  hsp.s2 = p2 - left.span;
  hsp.e1 = p1 + static_cast<Pos>(w) + right.span;
  hsp.e2 = p2 + static_cast<Pos>(w) + right.span;
  hsp.score = w * params.match + left.score_gain + right.score_gain;
  return hsp;
}

}  // namespace scoris::align
