#include "align/ungapped.hpp"

#include <algorithm>
#include <cassert>

namespace scoris::align {

using seqio::Code;
using seqio::is_base;
using seqio::kSentinel;
using seqio::Pos;

// Both walks below consume a whole run of matching concrete bases per
// iteration (one kernel call), then handle exactly one boundary character
// — a mismatch, an ambiguity code, a sentinel, or the span edge — with
// the scalar scoring rules.  The x-drop deficit only grows at boundary
// characters and the in-run score is monotone, so checking the drop-off
// once per iteration and taking the best score at the run end reproduces
// the per-character loop exactly.

SideExtension extend_left_plain(std::span<const Code> seq1,
                                std::span<const Code> seq2, Pos p1, Pos p2,
                                const ScoringParams& params,
                                const simd::KernelOps& ops) {
  SideExtension best;
  int score = 0;
  int maxi = 0;
  std::size_t i = p1;  // next character examined is seq1[i - 1]
  std::size_t j = p2;
  Pos steps = 0;
  while (maxi - score < params.xdrop_ungapped) {
    const std::size_t avail = std::min<std::size_t>(i, j);
    const std::size_t run =
        ops.match_run_bwd(seq1.data() + i, seq2.data() + j, avail);
    if (run > 0) {
      score += static_cast<int>(run) * params.match;
      steps += static_cast<Pos>(run);
      i -= run;
      j -= run;
      if (score > maxi) {
        maxi = score;
        best.score_gain = score;
        best.span = steps;
      }
    }
    if (i == 0 || j == 0) break;
    const Code a = seq1[i - 1];
    const Code b = seq2[j - 1];
    if (a == kSentinel || b == kSentinel) break;
    score += params.score(a, b);
    ++steps;
    --i;
    --j;
  }
  return best;
}

SideExtension extend_right_plain(std::span<const Code> seq1,
                                 std::span<const Code> seq2, Pos p1, Pos p2,
                                 const ScoringParams& params,
                                 const simd::KernelOps& ops) {
  SideExtension best;
  int score = 0;
  int maxi = 0;
  std::size_t i = p1;
  std::size_t j = p2;
  Pos steps = 0;
  while (maxi - score < params.xdrop_ungapped) {
    const std::size_t avail =
        std::min<std::size_t>(seq1.size() - i, seq2.size() - j);
    const std::size_t run =
        ops.match_run_fwd(seq1.data() + i, seq2.data() + j, avail);
    if (run > 0) {
      score += static_cast<int>(run) * params.match;
      steps += static_cast<Pos>(run);
      i += run;
      j += run;
      if (score > maxi) {
        maxi = score;
        best.score_gain = score;
        best.span = steps;
      }
    }
    if (i >= seq1.size() || j >= seq2.size()) break;
    const Code a = seq1[i];
    const Code b = seq2[j];
    if (a == kSentinel || b == kSentinel) break;
    score += params.score(a, b);
    ++steps;
    ++i;
    ++j;
  }
  return best;
}

Hsp extend_ungapped(std::span<const Code> seq1, std::span<const Code> seq2,
                    Pos p1, Pos p2, int w, const ScoringParams& params,
                    const simd::KernelOps& ops) {
  assert(w > 0);
  const SideExtension left =
      extend_left_plain(seq1, seq2, p1, p2, params, ops);
  const SideExtension right =
      extend_right_plain(seq1, seq2, p1 + static_cast<Pos>(w),
                         p2 + static_cast<Pos>(w), params, ops);
  Hsp hsp;
  hsp.s1 = p1 - left.span;
  hsp.s2 = p2 - left.span;
  hsp.e1 = p1 + static_cast<Pos>(w) + right.span;
  hsp.e2 = p2 + static_cast<Pos>(w) + right.span;
  hsp.score = w * params.match + left.score_gain + right.score_gain;
  return hsp;
}

SideExtension extend_left_plain(std::span<const Code> seq1,
                                std::span<const Code> seq2, Pos p1, Pos p2,
                                const ScoringParams& params) {
  return extend_left_plain(seq1, seq2, p1, p2, params, simd::dispatch());
}

SideExtension extend_right_plain(std::span<const Code> seq1,
                                 std::span<const Code> seq2, Pos p1, Pos p2,
                                 const ScoringParams& params) {
  return extend_right_plain(seq1, seq2, p1, p2, params, simd::dispatch());
}

Hsp extend_ungapped(std::span<const Code> seq1, std::span<const Code> seq2,
                    Pos p1, Pos p2, int w, const ScoringParams& params) {
  return extend_ungapped(seq1, seq2, p1, p2, w, params, simd::dispatch());
}

}  // namespace scoris::align
