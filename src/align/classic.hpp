// Classic full-matrix dynamic-programming aligners.
//
// These are the optimal algorithms the paper's introduction positions ORIS
// against (Needleman–Wunsch 1970, Smith–Waterman 1981, Gotoh 1982).  In
// this repository they serve as exact oracles for the heuristic pipeline's
// tests — any HSP or gapped alignment SCORIS-N reports must be bounded by
// the corresponding optimal score — and as the reference implementation in
// examples/classic_vs_heuristic.cpp.  All are O(n*m) time and use linear or
// quadratic memory as noted; intended for short sequences only.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "align/scoring.hpp"
#include "seqio/nucleotide.hpp"

namespace scoris::align {

/// Result of a classic DP alignment.
struct ClassicResult {
  std::int64_t score = 0;
  // Local coordinates [s, e) of the optimal local alignment within each
  // input (only meaningful for the local variants; for global alignment
  // they span the whole inputs).
  std::size_t s1 = 0, e1 = 0, s2 = 0, e2 = 0;
};

/// Needleman–Wunsch global alignment score with linear gap cost
/// (gap_extend per gap column; gap_open ignored). O(min(n,m)) memory.
[[nodiscard]] ClassicResult needleman_wunsch(std::span<const seqio::Code> a,
                                             std::span<const seqio::Code> b,
                                             const ScoringParams& params);

/// Smith–Waterman best local alignment score, linear gap cost.
[[nodiscard]] ClassicResult smith_waterman(std::span<const seqio::Code> a,
                                           std::span<const seqio::Code> b,
                                           const ScoringParams& params);

/// Gotoh best local alignment score with affine gaps
/// (gap_open + k*gap_extend for a k-column gap run).
[[nodiscard]] ClassicResult gotoh_local(std::span<const seqio::Code> a,
                                        std::span<const seqio::Code> b,
                                        const ScoringParams& params);

/// Best *ungapped* local alignment score (maximum-scoring diagonal run).
/// Exact oracle for HSP scores: no heuristic HSP can beat this.
[[nodiscard]] ClassicResult best_ungapped_local(
    std::span<const seqio::Code> a, std::span<const seqio::Code> b,
    const ScoringParams& params);

}  // namespace scoris::align
