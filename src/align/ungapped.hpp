// Ungapped (HSP) x-drop extension.
//
// This is the plain two-sided extension used by the BLASTN baseline and as
// the substrate for the ORIS ordered extension (which adds the seed-code
// abort, see core/ordered_extend.hpp).  Extension starts from a W-character
// exact seed match and grows left then right, remembering the best score; it
// stops when the running score falls `xdrop_ungapped` below the best, or at
// a sequence boundary (kSentinel).
//
// The character walk is built on the SIMD match-run kernels (align/simd/):
// identical concrete bases are consumed 16/32 at a time and the scalar
// scoring state advances once per match-run boundary.  Because the score is
// monotone within a run (every character adds +match), folding a whole run
// into one update reproduces the per-character loop exactly — the x-drop
// condition can only trip right after a mismatch, and the best score within
// a run is always at its end.  Every entry point takes the kernel to use;
// the overloads without one use the runtime-dispatched best
// (simd::dispatch()), so existing callers are unchanged.
#pragma once

#include <span>

#include "align/records.hpp"
#include "align/scoring.hpp"
#include "align/simd/kernel_dispatch.hpp"
#include "seqio/nucleotide.hpp"

namespace scoris::align {

/// Extend the exact seed match seq1[p1, p1+w) == seq2[p2, p2+w) in both
/// directions without gaps.  Returns the maximal-scoring HSP containing the
/// seed.  The caller guarantees the seed characters match and are concrete
/// bases; positions are global bank positions.
[[nodiscard]] Hsp extend_ungapped(std::span<const seqio::Code> seq1,
                                  std::span<const seqio::Code> seq2,
                                  seqio::Pos p1, seqio::Pos p2, int w,
                                  const ScoringParams& params,
                                  const simd::KernelOps& ops);
[[nodiscard]] Hsp extend_ungapped(std::span<const seqio::Code> seq1,
                                  std::span<const seqio::Code> seq2,
                                  seqio::Pos p1, seqio::Pos p2, int w,
                                  const ScoringParams& params);

/// One-sided left extension: returns (score_gain, new_start_offset) where
/// score_gain >= 0 is the best additional score found left of p1/p2 and
/// new_start_offset is how many characters the HSP start moves left.
struct SideExtension {
  int score_gain = 0;
  seqio::Pos span = 0;  ///< characters added on this side
};

[[nodiscard]] SideExtension extend_left_plain(
    std::span<const seqio::Code> seq1, std::span<const seqio::Code> seq2,
    seqio::Pos p1, seqio::Pos p2, const ScoringParams& params,
    const simd::KernelOps& ops);
[[nodiscard]] SideExtension extend_left_plain(
    std::span<const seqio::Code> seq1, std::span<const seqio::Code> seq2,
    seqio::Pos p1, seqio::Pos p2, const ScoringParams& params);

[[nodiscard]] SideExtension extend_right_plain(
    std::span<const seqio::Code> seq1, std::span<const seqio::Code> seq2,
    seqio::Pos p1, seqio::Pos p2, const ScoringParams& params,
    const simd::KernelOps& ops);
[[nodiscard]] SideExtension extend_right_plain(
    std::span<const seqio::Code> seq1, std::span<const seqio::Code> seq2,
    seqio::Pos p1, seqio::Pos p2, const ScoringParams& params);

}  // namespace scoris::align
