// Ungapped (HSP) x-drop extension.
//
// This is the plain two-sided extension used by the BLASTN baseline and as
// the substrate for the ORIS ordered extension (which adds the seed-code
// abort, see core/ordered_extend.hpp).  Extension starts from a W-character
// exact seed match and grows left then right, remembering the best score; it
// stops when the running score falls `xdrop_ungapped` below the best, or at
// a sequence boundary (kSentinel).
#pragma once

#include <span>

#include "align/records.hpp"
#include "align/scoring.hpp"
#include "seqio/nucleotide.hpp"

namespace scoris::align {

/// Extend the exact seed match seq1[p1, p1+w) == seq2[p2, p2+w) in both
/// directions without gaps.  Returns the maximal-scoring HSP containing the
/// seed.  The caller guarantees the seed characters match and are concrete
/// bases; positions are global bank positions.
[[nodiscard]] Hsp extend_ungapped(std::span<const seqio::Code> seq1,
                                  std::span<const seqio::Code> seq2,
                                  seqio::Pos p1, seqio::Pos p2, int w,
                                  const ScoringParams& params);

/// One-sided left extension: returns (score_gain, new_start_offset) where
/// score_gain >= 0 is the best additional score found left of p1/p2 and
/// new_start_offset is how many characters the HSP start moves left.
struct SideExtension {
  int score_gain = 0;
  seqio::Pos span = 0;  ///< characters added on this side
};

[[nodiscard]] SideExtension extend_left_plain(
    std::span<const seqio::Code> seq1, std::span<const seqio::Code> seq2,
    seqio::Pos p1, seqio::Pos p2, const ScoringParams& params);

[[nodiscard]] SideExtension extend_right_plain(
    std::span<const seqio::Code> seq1, std::span<const seqio::Code> seq2,
    seqio::Pos p1, seqio::Pos p2, const ScoringParams& params);

}  // namespace scoris::align
