// Greedy gapped extension (Zhang, Schwartz, Wagner & Miller 2000) — the
// megablast-family alternative to the x-drop dynamic program.
//
// Instead of filling a band of DP cells, the greedy algorithm tracks, for
// each difference count d, the furthest point reachable on every diagonal
// with exactly d differences (mismatch or single-base gap), sliding along
// exact matches for free.  Cost is O(differences x diagonals) — far below
// the DP on high-identity sequences, degrading as divergence grows.
//
// The score model is megablast's: with reward r (match) and penalty p
// (mismatch), every difference — substitution or gap column — costs the
// same (p plus the forgone reward), i.e. gap costs are tied to p rather
// than independently affine.  Scores are therefore comparable to, but not
// identical with, ScoringParams' affine model; on gap-free alignments they
// coincide.  The paper's section-4 "new generations of processors /
// programs" perspective motivates having this engine alongside the DP.
#pragma once

#include <cstdint>
#include <span>

#include "align/records.hpp"
#include "align/scoring.hpp"

namespace scoris::align {

/// Result of a two-sided greedy extension from an anchor point.
struct GreedyExtent {
  seqio::Pos s1 = 0;
  seqio::Pos e1 = 0;
  seqio::Pos s2 = 0;
  seqio::Pos e2 = 0;
  std::int32_t score = 0;       ///< megablast-model score
  std::uint32_t differences = 0;  ///< substitutions + gap columns used
};

/// Extend greedily from the anchor pair (mid1, mid2) in both directions.
/// Uses params.match / params.mismatch as (r, p) and stops a direction
/// when its running score drops more than params.xdrop_gapped below the
/// best.  Never crosses a kSentinel; each direction explores at most
/// `max_extent` characters.
[[nodiscard]] GreedyExtent greedy_extend(std::span<const seqio::Code> seq1,
                                         std::span<const seqio::Code> seq2,
                                         seqio::Pos mid1, seqio::Pos mid2,
                                         const ScoringParams& params,
                                         std::size_t max_extent = 1u << 20);

}  // namespace scoris::align
